"""The WiSS sort utility: external merge-sort planning.

The parallel sort-merge join sorts each node's relation fragment with
an external merge sort whose memory budget is the experiment's
available-memory setting (§4: "For the sort-merge join algorithm, this
memory is used for both sorting and merging").  Two of the paper's
observations fall directly out of the pass arithmetic implemented
here:

* the **upward steps** in the sort-merge response-time curves are the
  points where shrinking memory adds a merge pass over the larger
  relation;
* the small **dip between ratios 0.5 and 0.25** happens where the pass
  count is constant while the merge fan-in shrinks — fewer sort
  buffers mean cheaper per-tuple merging ("adding additional sort
  buffers really just adds processing overhead").

:func:`plan_external_sort` does the arithmetic; the timed execution
(charging the plan's I/O to a disk and its CPU to a node) is driven by
the sort-merge join in :mod:`repro.core.joins.sort_merge`.  The actual
reordering of tuples is done with Python's sort so the logical output
is exact.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.catalog.pages import ColumnPage
from repro.costs import CostModel

Row = typing.Tuple

#: Minimum buffer pages an external sort needs (two inputs + one output).
MIN_SORT_PAGES = 3


@dataclasses.dataclass(frozen=True)
class SortPlan:
    """The I/O and CPU profile of one external sort."""

    n_tuples: int
    input_pages: int
    memory_pages: int
    #: Sorted runs produced by run formation.
    initial_runs: int
    #: Merge fan-in (memory_pages - 1 input buffers, 1 output buffer).
    fan_in: int
    #: Full read+write passes over the data *after* run formation.
    merge_passes: int

    @property
    def total_passes(self) -> int:
        """Run formation plus merge passes (each reads + writes all)."""
        return 1 + self.merge_passes

    @property
    def pages_read(self) -> int:
        return self.input_pages * self.total_passes

    @property
    def pages_written(self) -> int:
        return self.input_pages * self.total_passes

    def cpu_seconds(self, costs: CostModel) -> float:
        """Total single-node CPU time to execute the plan.

        Run formation sorts ``memory_pages``-sized loads
        (``n log2 n`` comparisons); each merge pass plays a loser tree
        of the fan-in (``log2 fan_in`` comparisons per tuple) plus
        fixed per-tuple shuffle overhead.
        """
        if self.n_tuples == 0:
            return 0.0
        run_tuples = max(2, math.ceil(self.n_tuples / self.initial_runs))
        run_cost = self.n_tuples * (
            costs.sort_tuple_overhead
            + costs.sort_compare * math.ceil(math.log2(run_tuples)))
        merge_cost = self.merge_passes * self.n_tuples * (
            costs.sort_tuple_overhead
            + costs.sort_compare * max(1, math.ceil(math.log2(self.fan_in))))
        return run_cost + merge_cost


def plan_external_sort(n_tuples: int, tuple_bytes: int, memory_bytes: int,
                       costs: CostModel) -> SortPlan:
    """Plan an external merge sort of ``n_tuples`` within
    ``memory_bytes`` of sort space.

    The plan never uses fewer than :data:`MIN_SORT_PAGES` buffer pages:
    like WiSS, the sort utility requires a minimal working set even if
    the experiment's memory dial is lower.
    """
    if n_tuples < 0:
        raise ValueError(f"n_tuples must be >= 0, got {n_tuples}")
    tuples_per_page = max(1, costs.page_size // tuple_bytes)
    input_pages = math.ceil(n_tuples / tuples_per_page) if n_tuples else 0
    memory_pages = max(MIN_SORT_PAGES, memory_bytes // costs.page_size)
    if input_pages == 0:
        return SortPlan(n_tuples=0, input_pages=0,
                        memory_pages=memory_pages, initial_runs=0,
                        fan_in=max(2, memory_pages - 1), merge_passes=0)
    initial_runs = math.ceil(input_pages / memory_pages)
    fan_in = max(2, memory_pages - 1)
    if initial_runs <= 1:
        merge_passes = 0
    else:
        merge_passes = math.ceil(math.log(initial_runs, fan_in))
    return SortPlan(n_tuples=n_tuples, input_pages=input_pages,
                    memory_pages=memory_pages, initial_runs=initial_runs,
                    fan_in=fan_in, merge_passes=merge_passes)


def sort_rows(rows: typing.Sequence[Row],
              key_index: int) -> typing.Sequence[Row]:
    """The logical result of the sort: rows ordered by one attribute.

    Ties are broken by full-row comparison purely for determinism —
    a stable, reproducible order keeps every simulation replayable.
    A :class:`~repro.catalog.pages.ColumnPage` input sorts columnar
    (``np.lexsort`` over the same comparison keys) and stays a page;
    anything else returns the classic sorted tuple list.
    """
    if isinstance(rows, ColumnPage):
        order = rows.sort_order(key_index)
        if order is not None:
            return rows.take(order)
    return sorted(rows, key=lambda row: (row[key_index], row))
