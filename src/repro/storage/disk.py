"""A single simulated disk drive.

Each disk node owns one :class:`Disk`: a capacity-1
:class:`~repro.sim.resources.Resource` (one arm — concurrent requests
queue) plus calibrated page-transfer times from the
:class:`~repro.costs.CostModel`.  Sequential transfers model the WiSS
one-page readahead: the effective per-page time is mostly rotation +
transfer rather than a full seek.

All I/O methods are generators intended for ``yield from`` inside a
simulated process::

    yield from node.disk.read_pages(n_pages, sequential=True)
"""

from __future__ import annotations

import typing

from repro.costs import CostModel
from repro.sim import Resource, Simulator


class Disk:
    """One disk arm with FIFO queueing and I/O statistics."""

    def __init__(self, sim: Simulator, costs: CostModel,
                 name: str = "disk") -> None:
        self.sim = sim
        self.costs = costs
        self.name = name
        self.arm = Resource(sim, capacity=1, name=f"{name}.arm")
        self.pages_read = 0
        self.pages_written = 0
        self.sequential_reads = 0
        self.random_reads = 0
        self.sequential_writes = 0
        self.random_writes = 0

    # -- timed I/O (``yield from`` these) --------------------------------

    def read_pages(self, n_pages: int, sequential: bool = True
                   ) -> typing.Iterable:
        """Read ``n_pages`` pages, holding the arm for their duration.

        Returns the arm's hold iterable directly (one less generator
        frame on the kernel's hottest delegation chain); statistics are
        counted at issue time — equivalent, since phase boundaries only
        fall when no I/O is in flight.
        """
        if n_pages < 0:
            raise ValueError(f"cannot read {n_pages} pages")
        if n_pages == 0:
            return ()
        per_page = (self.costs.disk_page_read_sequential if sequential
                    else self.costs.disk_page_read_random)
        self.pages_read += n_pages
        if sequential:
            self.sequential_reads += n_pages
        else:
            self.random_reads += n_pages
        return self.arm.use(n_pages * per_page)

    def write_pages(self, n_pages: int, sequential: bool = True
                    ) -> typing.Iterable:
        """Write ``n_pages`` pages, holding the arm for their duration."""
        if n_pages < 0:
            raise ValueError(f"cannot write {n_pages} pages")
        if n_pages == 0:
            return ()
        per_page = (self.costs.disk_page_write_sequential if sequential
                    else self.costs.disk_page_write_random)
        self.pages_written += n_pages
        if sequential:
            self.sequential_writes += n_pages
        else:
            self.random_writes += n_pages
        return self.arm.use(n_pages * per_page)

    # -- statistics ----------------------------------------------------------

    @property
    def total_ios(self) -> int:
        return self.pages_read + self.pages_written

    def reset_statistics(self) -> None:
        self.pages_read = 0
        self.pages_written = 0
        self.sequential_reads = 0
        self.random_reads = 0
        self.sequential_writes = 0
        self.random_writes = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Disk {self.name!r} read={self.pages_read} "
                f"written={self.pages_written}>")
