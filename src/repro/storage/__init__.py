"""Storage substrate — the reproduction's analogue of WiSS.

Gamma's file services come from the Wisconsin Storage System (§2.2):
structured sequential files, B+ indices, a sort utility, and a scan
mechanism with one-page readahead.  This package provides the simulated
equivalents:

* :class:`~repro.storage.disk.Disk` — a single disk arm as a contended
  resource with sequential/random page costs and I/O counters.
* :class:`~repro.storage.files.PagedFile` — a temp/heap file whose
  contents are real tuples and whose footprint is accounted in 8 KB
  pages.
* :mod:`~repro.storage.sort` — the external merge-sort utility with
  run/pass arithmetic (the source of the paper's sort-merge "steps").
* :class:`~repro.storage.btree.BPlusTree` — WiSS's B+ index structure.
* :class:`~repro.storage.buffer.BufferPool` — an LRU page cache with
  hit/miss accounting used by index traversals.
"""

from repro.storage.buffer import BufferPool
from repro.storage.btree import BPlusTree
from repro.storage.disk import Disk
from repro.storage.files import PagedFile
from repro.storage.sort import SortPlan, plan_external_sort

__all__ = [
    "BPlusTree",
    "BufferPool",
    "Disk",
    "PagedFile",
    "SortPlan",
    "plan_external_sort",
]
