"""Configuration for the simulation-purity linter.

Defaults live here; projects override them from ``pyproject.toml``::

    [tool.repro-lint]
    sim-packages = ["repro/sim", "repro/core"]
    allow = ["repro/experiments/__main__.py"]
    disable = ["REPRO005"]

``sim-packages`` are path fragments naming the packages whose code is
*simulation-pure* — the kernel-scoped rules (identity ordering, set
iteration, float keys, default-hash heap entries) only apply there.
``allow`` names driver/CLI files where wall-clock time and host entropy
are legitimate (the experiment harness timing its own runs); every rule
skips allowlisted files.  ``disable`` turns rule codes off globally.
"""

from __future__ import annotations

import dataclasses
import pathlib
import tomllib

#: Packages whose code must stay simulation-pure (path fragments,
#: matched with "/" separators against the linted file's path).
DEFAULT_SIM_PACKAGES = (
    "repro/sim",
    "repro/core",
    "repro/engine",
    "repro/network",
    "repro/storage",
)

#: Driver/CLI files where host-time reads are legitimate.
DEFAULT_ALLOW = (
    "repro/experiments/__main__.py",
)


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Resolved linter settings (defaults + pyproject overrides)."""

    sim_packages: tuple[str, ...] = DEFAULT_SIM_PACKAGES
    allow: tuple[str, ...] = DEFAULT_ALLOW
    disable: tuple[str, ...] = ()

    def is_allowed(self, path: pathlib.Path) -> bool:
        """True when ``path`` is an allowlisted driver/CLI file."""
        return _matches_any(path, self.allow)

    def in_sim_package(self, path: pathlib.Path) -> bool:
        """True when ``path`` lives in a simulation-pure package."""
        return _matches_any(path, self.sim_packages)

    def rule_enabled(self, code: str) -> bool:
        return code not in self.disable


def _matches_any(path: pathlib.Path, fragments: tuple[str, ...]) -> bool:
    normalized = path.as_posix()
    for fragment in fragments:
        cleaned = fragment.strip("/")
        if not cleaned:
            continue
        if normalized.endswith("/" + cleaned) or normalized == cleaned:
            return True
        if ("/" + cleaned + "/") in ("/" + normalized):
            return True
    return False


def find_pyproject(start: pathlib.Path) -> pathlib.Path | None:
    """The nearest ``pyproject.toml`` at or above ``start``."""
    current = start if start.is_dir() else start.parent
    for directory in (current, *current.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def load_lint_config(start: pathlib.Path | None = None) -> LintConfig:
    """Load ``[tool.repro-lint]`` from the nearest pyproject.toml.

    Missing file or missing table both yield the defaults, so the
    linter works on any tree.
    """
    if start is None:
        start = pathlib.Path.cwd()
    pyproject = find_pyproject(start)
    if pyproject is None:
        return LintConfig()
    with open(pyproject, "rb") as handle:
        data = tomllib.load(handle)
    table = data.get("tool", {}).get("repro-lint", {})
    if not isinstance(table, dict):
        raise ValueError(
            f"[tool.repro-lint] in {pyproject} must be a table")
    return LintConfig(
        sim_packages=_string_tuple(
            table, "sim-packages", DEFAULT_SIM_PACKAGES, pyproject),
        allow=_string_tuple(table, "allow", DEFAULT_ALLOW, pyproject),
        disable=_string_tuple(table, "disable", (), pyproject),
    )


def _string_tuple(table: dict, key: str, default: tuple[str, ...],
                  source: pathlib.Path) -> tuple[str, ...]:
    value = table.get(key)
    if value is None:
        return default
    if (not isinstance(value, list)
            or any(not isinstance(item, str) for item in value)):
        raise ValueError(
            f"[tool.repro-lint] {key} in {source} must be a list of "
            "strings")
    return tuple(value)
