"""Runtime event-tie auditor — the DES analog of a race detector.

The kernel's heap is keyed ``(time, priority, sequence)``.  Whenever
two heap entries are popped with identical ``(time, priority)``, their
relative order was decided *only* by the insertion-order sequence
number: a code change that schedules the same events in a different
order silently reorders the simulation.  The golden bit-parity tests
catch such drift after the fact; the auditor pinpoints where it can
happen.

Enable with ``REPRO_AUDIT=1``.  The simulator then routes its run loop
through an audited path that reports every tie to :class:`TieAuditor`,
which aggregates them per *site* — the tuple of tied event labels with
digit runs normalised away (``process:joiner-3`` → ``process:joiner-#``).

Classification
--------------
A tie is not a bug: the kernel *pins* every tie deterministically via
the sequence counter, and the purity linter guarantees the insertion
order feeding that counter is itself reproducible (no hash-order
iteration, no host entropy).  What the auditor classifies is whether a
tie site is *accounted for*:

* **benign** — every event in the group carries a *named* kernel
  label: a process completion (``done:*``), a timeout-driven resume of
  a named process (``process:*``), or a resource hold expiry
  (``resource:*``).  A named tie is visible in debug output, belongs
  to the inventoried families of DESIGN.md §8, and its pinned order is
  backstopped end-to-end by the golden bit-parity tests.  Also benign:
  whole signatures matching an allowlist pattern
  (``REPRO_AUDIT_ALLOW``, semicolon-separated :mod:`fnmatch` globs).
* **suspect** — groups containing an event the auditor cannot
  attribute (an anonymous ``Event``/``Timeout``, a condition, model
  code using unnamed callbacks).  An unattributable tie usually means
  new model code bypassed the naming conventions; it stays suspect
  until named or explicitly allowlisted.

With ``REPRO_AUDIT=1`` auditing only observes — it never changes pop
order — so the golden parity tests pass unchanged.  With
``REPRO_AUDIT=reverse`` the kernel additionally fires each tied heap
batch in *reversed* sequence order — a sensitivity probe that
measures how much of the simulated timing rests on the pinned
tie-break.  Reversal *does* shift several figure-5/7/14 response
times (tied processes contend for the same FIFO resources, so batch
order decides queue positions), which is precisely why the tie-break
must stay deterministic and why this suite polices it.
"""

from __future__ import annotations

import dataclasses
import fnmatch
import os
import re
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.events import Event

_DIGITS = re.compile(r"\d+")

#: Signature-joining separator (labels never contain it).
SEPARATOR = " + "

#: Label classes accounted for by the kernel's determinism argument
#: (see "Classification" above and DESIGN.md §8): named completions,
#: named timeout resumes, and resource hold expiries are scheduled by
#: straight-line model code whose insertion order the purity linter
#: keeps reproducible, and the pinned tie order is regression-tested
#: by the golden bit-parity suite.
DEFAULT_BENIGN_LABELS = ("done:*", "process:*", "resource:*")


def event_label(event: "Event") -> str:
    """A human-readable, allocator-independent label for an event.

    Prefers the named owner of the event's first callback (the process
    or resource the firing will touch), falling back to the event's
    own name (a completing :class:`Process`) and finally its type.

    Owners may precompute their label in an ``audit_label`` attribute
    (:class:`~repro.sim.process.Process` and
    :class:`~repro.sim.resources.Resource` do) — the calendar
    scheduler's cohort gate labels events at kernel rate, so the
    type/name introspection is hoisted to owner construction.
    """
    for callback in event.callbacks:
        owner = getattr(callback, "__self__", None)
        if owner is None:
            continue
        label = getattr(owner, "audit_label", None)
        if label is not None:
            return label
        name = getattr(owner, "name", None)
        if isinstance(name, str):
            return f"{type(owner).__name__.lower()}:{name}"
    name = getattr(event, "name", None)
    if isinstance(name, str):
        return f"done:{name}"
    return type(event).__name__.lower()


def normalise(label: str) -> str:
    """Collapse digit runs so symmetric peers share one site name."""
    return _DIGITS.sub("#", label)


def signature_is_benign(normalised: typing.Sequence[str], signature: str,
                        benign_labels: typing.Sequence[str]
                        = DEFAULT_BENIGN_LABELS,
                        benign_signatures: typing.Sequence[str] = ()
                        ) -> bool:
    """Classify one tie/cohort signature (see "Classification" above).

    Shared by :class:`TieAuditor` and the calendar scheduler's
    cohort-fire gate (``Simulator._cohort_benign``): a same-instant
    event group may be fired straight off its bucket only when this
    classification vouches for its signature — the same contract that
    marks a tie site accounted-for in the audit report.

    ``normalised`` is the sorted, deduplicated list of normalised event
    labels; ``signature`` is their :data:`SEPARATOR` join.
    """
    if len(normalised) == 1:
        return True  # symmetric peers: identical code, either order
    if all(any(fnmatch.fnmatchcase(label, pattern)
               for pattern in benign_labels)
           for label in normalised):
        return True
    return any(fnmatch.fnmatchcase(signature, pattern)
               for pattern in benign_signatures)


@dataclasses.dataclass
class TieSite:
    """Aggregate record of one recurring tie signature."""

    signature: str
    benign: bool
    groups: int = 0
    events: int = 0
    first_time: float = 0.0
    example: tuple[str, ...] = ()


class TieAuditor:
    """Aggregates same-``(time, priority)`` heap-pop groups by site."""

    def __init__(self, benign_signatures: typing.Sequence[str] = (),
                 benign_labels: typing.Sequence[str]
                 = DEFAULT_BENIGN_LABELS,
                 reverse_ties: bool = False) -> None:
        self.benign_signatures = tuple(benign_signatures)
        self.benign_labels = tuple(benign_labels)
        #: When True the kernel fires tied heap batches in reversed
        #: order (the ``REPRO_AUDIT=reverse`` stress mode).
        self.reverse_ties = reverse_ties
        self.sites: dict[str, TieSite] = {}
        self._group_key: tuple[float, int] | None = None
        self._group_labels: list[str] = []
        self._pending_tie = False

    @classmethod
    def from_env(cls) -> "TieAuditor":
        raw = os.environ.get("REPRO_AUDIT_ALLOW", "")
        patterns = [part.strip() for part in raw.split(";")
                    if part.strip()]
        mode = os.environ.get("REPRO_AUDIT", "").strip().lower()
        return cls(patterns, reverse_ties=(mode == "reverse"))

    # -- recording (hot path while auditing) ----------------------------

    def record(self, when: float, priority: int, event: "Event",
               tied_with_next: bool) -> None:
        """Observe one fired heap pop.

        ``tied_with_next`` is True when, at pop time, the next heap
        entry shares this event's ``(time, priority)`` key — i.e. the
        two entries *coexisted* in the heap and only the sequence
        counter ordered them.  An event merely scheduled at the
        current instant by an earlier fire is causally ordered, not
        tied, and coexistence is exactly what separates the two cases.

        Must be called *before* the event fires: firing clears the
        callback list the label is derived from.  Hold re-keys and
        urgent-lane pops are not ties (the FIFO lane's order is
        semantically first-in-first-out) and must not be reported.
        """
        key = (when, priority)
        if not (self._pending_tie and key == self._group_key):
            self._flush_group()
            self._group_key = key
        self._group_labels.append(event_label(event))
        self._pending_tie = tied_with_next

    def _flush_group(self) -> None:
        if len(self._group_labels) > 1:
            self._add_group(tuple(self._group_labels), self.sites)
        self._group_labels.clear()
        self._group_key = None
        self._pending_tie = False

    def _add_group(self, labels: tuple[str, ...],
                   sites: dict[str, TieSite]) -> None:
        normalised = sorted({normalise(label) for label in labels})
        signature = SEPARATOR.join(normalised)
        site = sites.get(signature)
        if site is None:
            site = TieSite(signature=signature,
                           benign=self._is_benign(normalised, signature),
                           first_time=(self._group_key or (0.0, 0))[0],
                           example=labels[:4])
            sites[signature] = site
        site.groups += 1
        site.events += len(labels)

    def _is_benign(self, normalised: typing.Sequence[str],
                   signature: str) -> bool:
        return signature_is_benign(normalised, signature,
                                   self.benign_labels,
                                   self.benign_signatures)

    # -- reporting -------------------------------------------------------

    def flush(self) -> None:
        """Close the trailing group (call when the run loop drains)."""
        self._flush_group()

    def _snapshot(self) -> dict[str, TieSite]:
        """Sites including the in-flight group, without mutating state.

        The reporting APIs below are diagnostics snapshots and may be
        called mid-run; closing the pending group there would split (or
        silently drop) a tie group spanning the call.  A pending group
        of two or more labels is already a tie, so it is counted via a
        copied site table; groups of one stay open and uncounted,
        exactly as :meth:`flush` would leave them.
        """
        if len(self._group_labels) < 2:
            return self.sites
        sites = {signature: dataclasses.replace(site)
                 for signature, site in self.sites.items()}
        self._add_group(tuple(self._group_labels), sites)
        return sites

    def counters(self) -> dict[str, int]:
        """Numeric aggregates, merged into the kernel counters.

        Safe to call mid-run: auditor state is not mutated.
        """
        sites = self._snapshot().values()
        suspect = [s for s in sites if not s.benign]
        return {
            "audit_tie_groups": sum(s.groups for s in sites),
            "audit_tie_events": sum(s.events for s in sites),
            "audit_suspect_groups": sum(s.groups for s in suspect),
            "audit_suspect_sites": len(suspect),
        }

    def site_counts(self) -> dict[str, dict[str, int]]:
        """Picklable per-site group counts, keyed by classification.

        Safe to call mid-run: auditor state is not mutated.
        """
        benign: dict[str, int] = {}
        suspect: dict[str, int] = {}
        for site in self._snapshot().values():
            (benign if site.benign else suspect)[site.signature] = (
                site.groups)
        return {"benign": benign, "suspect": suspect}

    def summary(self, limit: int = 10) -> str:
        """A ``--profile``-style text report of the tie landscape.

        Safe to call mid-run: auditor state is not mutated.
        """
        sites = self._snapshot()
        if not sites:
            return "event-tie audit: no same-(time, priority) ties"
        ordered = sorted(sites.values(),
                         key=lambda s: (s.benign, -s.groups,
                                        s.signature))
        lines = [
            "event-tie audit: "
            f"{sum(s.groups for s in sites.values())} tie "
            f"group(s) across {len(sites)} site(s), "
            f"{sum(1 for s in sites.values() if not s.benign)} "
            "suspect"]
        for site in ordered[:limit]:
            tag = "BENIGN " if site.benign else "SUSPECT"
            lines.append(
                f"  {tag} x{site.groups:<6} t0={site.first_time:<12.6f}"
                f" {site.signature}")
        if len(ordered) > limit:
            lines.append(f"  ... {len(ordered) - limit} more site(s)")
        return "\n".join(lines)
