"""Determinism analysis suite.

The whole reproduction rests on the simulator being bit-deterministic:
the golden bit-parity tests and the merged ``--jobs`` sweeps are only
meaningful if no code path depends on wall-clock time, unseeded
randomness, hash/iteration order, or heap tie-breaks.  This package
enforces that mechanically, in two halves:

* a static **simulation-purity linter** (:mod:`repro.analysis.lint`,
  run as ``python -m repro.analysis.lint``) whose AST rules ban the
  hazard patterns outright (see :mod:`repro.analysis.rules` for the
  REPRO001… catalog), and
* a runtime **event-tie auditor** (:mod:`repro.analysis.audit`,
  enabled with ``REPRO_AUDIT=1``) that watches the kernel's event heap
  for same-``(time, priority)`` pops whose relative order is decided
  only by insertion sequence — the discrete-event analog of a race
  detector.

DESIGN.md §8 catalogs the invariants each half protects.
"""

from repro.analysis.audit import TieAuditor
from repro.analysis.config import LintConfig, load_lint_config
from repro.analysis.linter import (
    Finding,
    StaleSuppression,
    lint_file,
    lint_paths,
    stale_suppressions,
    strip_stale_suppressions,
)
from repro.analysis.rules import RULES

__all__ = [
    "Finding",
    "LintConfig",
    "RULES",
    "StaleSuppression",
    "TieAuditor",
    "lint_file",
    "lint_paths",
    "load_lint_config",
    "stale_suppressions",
    "strip_stale_suppressions",
]
