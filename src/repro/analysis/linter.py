"""File walking, suppression handling, and finding collection.

A *finding* is a violation that survived scoping (allowlist, sim-only
rules) and line-level suppressions.  Suppression syntax, on the
offending line::

    ts = time.time()  # repro-lint: disable=REPRO001
    order = id(obj)   # repro-lint: disable=REPRO001,REPRO003
    anything()        # repro-lint: disable=all

The comment must carry specific codes (or ``all``); a bare
``# repro-lint: disable`` is reported as a malformed suppression so
typos fail loudly instead of silently keeping a rule on.

Stale suppressions
------------------
A suppression whose rule *ran* on the file but no longer fires on that
line is **stale** — dead armour that would silently swallow a future
regression.  Stale codes are reported as ``REPRO000`` findings; the
CLI's ``--fix-stale`` strips them from the source.  Detection is
conservative: a code is only judged when its rule actually executed
(enabled, and in scope for the file), and bare ``=all`` suppressions
are exempt because the rule they meant cannot be known.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import re
import tokenize
import typing

from repro.analysis.config import LintConfig
from repro.analysis.rules import RULES, ModuleContext, Rule

SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint\s*:\s*disable(?:=(?P<codes>[\w,\s]*))?")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One reportable lint result."""

    path: pathlib.Path
    line: int
    column: int
    code: str
    message: str

    def render(self) -> str:
        return (f"{self.path.as_posix()}:{self.line}:{self.column + 1}: "
                f"{self.code} {self.message}")


def _suppressions(source: str, path: pathlib.Path
                  ) -> tuple[dict[int, frozenset[str]], list[Finding]]:
    """line -> suppressed codes, plus findings for malformed comments.

    Comments are read with :mod:`tokenize` so string literals that
    merely *contain* the marker text do not suppress anything.
    """
    suppressed: dict[int, frozenset[str]] = {}
    malformed: list[Finding] = []
    lines = iter(source.splitlines(keepends=True))
    try:
        tokens = list(tokenize.generate_tokens(
            lambda: next(lines, "")))
    except tokenize.TokenError:  # pragma: no cover - ast.parse catches
        return suppressed, malformed
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = SUPPRESSION_RE.search(token.string)
        if match is None:
            continue
        raw = match.group("codes")
        codes = frozenset(
            code.strip().upper()
            for code in (raw or "").split(",") if code.strip())
        if not codes:
            malformed.append(Finding(
                path, token.start[0], token.start[1], "REPRO000",
                "malformed suppression: use "
                "'# repro-lint: disable=CODE[,CODE]' or '=all'"))
            continue
        line = token.start[0]
        suppressed[line] = suppressed.get(line, frozenset()) | codes
    return suppressed, malformed


@dataclasses.dataclass(frozen=True)
class StaleSuppression:
    """A suppressed code whose rule ran but no longer fires."""

    path: pathlib.Path
    line: int
    column: int
    code: str

    def as_finding(self) -> Finding:
        return Finding(
            self.path, self.line, self.column, "REPRO000",
            f"stale suppression: {self.code} no longer fires on this "
            f"line; remove it (or run --fix-stale)")


def _lint_module(source: str, path: pathlib.Path, config: LintConfig,
                 rules: typing.Sequence[Rule]
                 ) -> tuple[list[Finding], list[StaleSuppression]]:
    """Findings plus the stale suppressions of one module."""
    if config.is_allowed(path):
        return [], []
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [Finding(path, error.lineno or 1,
                        (error.offset or 1) - 1, "REPRO000",
                        f"syntax error: {error.msg}")], []
    suppressed, findings = _suppressions(source, path)
    context = ModuleContext(path, tree, config)
    used: set[tuple[int, str]] = set()
    ran: set[str] = set()
    for rule in rules:
        if not config.rule_enabled(rule.code):
            continue
        if rule.sim_only and not context.sim_scoped:
            continue
        ran.add(rule.code)
        for violation in rule.check(context):
            active = suppressed.get(violation.line, frozenset())
            if violation.code in active:
                used.add((violation.line, violation.code))
                continue
            if "ALL" in active:
                used.add((violation.line, "ALL"))
                continue
            findings.append(Finding(
                path, violation.line, violation.column,
                violation.code, violation.message))
    findings.sort(key=lambda f: (f.line, f.column, f.code))
    stale = []
    for line in sorted(suppressed):
        column = _suppression_columns(source, line)
        for code in sorted(suppressed[line]):
            if code == "ALL":
                continue  # which rule it meant is unknowable
            if code in ran and (line, code) not in used:
                stale.append(StaleSuppression(path, line, column, code))
    return findings, stale


def _suppression_columns(source: str, line: int) -> int:
    """Column of the suppression comment on ``line`` (0-based)."""
    try:
        text = source.splitlines()[line - 1]
    except IndexError:  # pragma: no cover - lines come from tokenize
        return 0
    match = SUPPRESSION_RE.search(text)
    return match.start() if match else 0


def lint_source(source: str, path: pathlib.Path, config: LintConfig,
                rules: typing.Sequence[Rule] = RULES) -> list[Finding]:
    """Lint one module's source text (stale suppressions included)."""
    findings, stale = _lint_module(source, path, config, rules)
    findings.extend(s.as_finding() for s in stale)
    findings.sort(key=lambda f: (f.line, f.column, f.code))
    return findings


def stale_suppressions(source: str, path: pathlib.Path,
                       config: LintConfig,
                       rules: typing.Sequence[Rule] = RULES
                       ) -> list[StaleSuppression]:
    """Only the stale suppressions of one module's source text."""
    return _lint_module(source, path, config, rules)[1]


def strip_stale_suppressions(source: str,
                             stale: typing.Sequence[StaleSuppression]
                             ) -> str:
    """Source with the given stale codes removed.

    A suppression comment keeping at least one live code is rewritten
    with the survivors; one losing every code is removed, and a line
    holding nothing else disappears entirely.
    """
    dead_by_line: dict[int, set[str]] = {}
    for item in stale:
        dead_by_line.setdefault(item.line, set()).add(item.code)
    out: list[str] = []
    for number, text in enumerate(source.splitlines(keepends=True), 1):
        dead = dead_by_line.get(number)
        if not dead:
            out.append(text)
            continue
        newline = text[len(text.rstrip("\r\n")):]
        body = text.rstrip("\r\n")
        match = SUPPRESSION_RE.search(body)
        if match is None:  # pragma: no cover - stale implies a match
            out.append(text)
            continue
        raw = match.group("codes") or ""
        keep = [code.strip() for code in raw.split(",")
                if code.strip() and code.strip().upper() not in dead]
        if keep:
            replacement = f"# repro-lint: disable={','.join(keep)}"
            out.append(body[:match.start()] + replacement
                       + body[match.end():] + newline)
            continue
        before = body[:match.start()].rstrip()
        after = body[match.end():].strip()
        if not before and not after:
            continue  # comment-only line: drop it
        if after:
            before = f"{before} {after}" if before else after
        out.append(before + newline)
    return "".join(out)


def lint_file(path: pathlib.Path, config: LintConfig,
              rules: typing.Sequence[Rule] = RULES) -> list[Finding]:
    """Lint one file on disk."""
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path, config, rules)


def iter_python_files(paths: typing.Iterable[pathlib.Path]
                      ) -> typing.Iterator[pathlib.Path]:
    """Expand files/directories into sorted .py files."""
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def lint_paths(paths: typing.Iterable[pathlib.Path],
               config: LintConfig,
               rules: typing.Sequence[Rule] = RULES) -> list[Finding]:
    """Lint every Python file reachable from ``paths``."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, config, rules))
    return findings
