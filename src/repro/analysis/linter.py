"""File walking, suppression handling, and finding collection.

A *finding* is a violation that survived scoping (allowlist, sim-only
rules) and line-level suppressions.  Suppression syntax, on the
offending line::

    ts = time.time()  # repro-lint: disable=REPRO001
    order = id(obj)   # repro-lint: disable=REPRO001,REPRO003
    anything()        # repro-lint: disable=all

The comment must carry specific codes (or ``all``); a bare
``# repro-lint: disable`` is reported as a malformed suppression so
typos fail loudly instead of silently keeping a rule on.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import re
import tokenize
import typing

from repro.analysis.config import LintConfig
from repro.analysis.rules import RULES, ModuleContext, Rule

SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint\s*:\s*disable(?:=(?P<codes>[\w,\s]*))?")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One reportable lint result."""

    path: pathlib.Path
    line: int
    column: int
    code: str
    message: str

    def render(self) -> str:
        return (f"{self.path.as_posix()}:{self.line}:{self.column + 1}: "
                f"{self.code} {self.message}")


def _suppressions(source: str, path: pathlib.Path
                  ) -> tuple[dict[int, frozenset[str]], list[Finding]]:
    """line -> suppressed codes, plus findings for malformed comments.

    Comments are read with :mod:`tokenize` so string literals that
    merely *contain* the marker text do not suppress anything.
    """
    suppressed: dict[int, frozenset[str]] = {}
    malformed: list[Finding] = []
    lines = iter(source.splitlines(keepends=True))
    try:
        tokens = list(tokenize.generate_tokens(
            lambda: next(lines, "")))
    except tokenize.TokenError:  # pragma: no cover - ast.parse catches
        return suppressed, malformed
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = SUPPRESSION_RE.search(token.string)
        if match is None:
            continue
        raw = match.group("codes")
        codes = frozenset(
            code.strip().upper()
            for code in (raw or "").split(",") if code.strip())
        if not codes:
            malformed.append(Finding(
                path, token.start[0], token.start[1], "REPRO000",
                "malformed suppression: use "
                "'# repro-lint: disable=CODE[,CODE]' or '=all'"))
            continue
        line = token.start[0]
        suppressed[line] = suppressed.get(line, frozenset()) | codes
    return suppressed, malformed


def lint_source(source: str, path: pathlib.Path, config: LintConfig,
                rules: typing.Sequence[Rule] = RULES) -> list[Finding]:
    """Lint one module's source text."""
    if config.is_allowed(path):
        return []
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [Finding(path, error.lineno or 1,
                        (error.offset or 1) - 1, "REPRO000",
                        f"syntax error: {error.msg}")]
    suppressed, findings = _suppressions(source, path)
    context = ModuleContext(path, tree, config)
    for rule in rules:
        if not config.rule_enabled(rule.code):
            continue
        if rule.sim_only and not context.sim_scoped:
            continue
        for violation in rule.check(context):
            active = suppressed.get(violation.line, frozenset())
            if violation.code in active or "ALL" in active:
                continue
            findings.append(Finding(
                path, violation.line, violation.column,
                violation.code, violation.message))
    findings.sort(key=lambda f: (f.line, f.column, f.code))
    return findings


def lint_file(path: pathlib.Path, config: LintConfig,
              rules: typing.Sequence[Rule] = RULES) -> list[Finding]:
    """Lint one file on disk."""
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path, config, rules)


def iter_python_files(paths: typing.Iterable[pathlib.Path]
                      ) -> typing.Iterator[pathlib.Path]:
    """Expand files/directories into sorted .py files."""
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def lint_paths(paths: typing.Iterable[pathlib.Path],
               config: LintConfig,
               rules: typing.Sequence[Rule] = RULES) -> list[Finding]:
    """Lint every Python file reachable from ``paths``."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, config, rules))
    return findings
