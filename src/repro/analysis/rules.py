"""The simulation-purity rule catalog (REPRO001…).

Each rule guards one determinism invariant of the simulator (DESIGN.md
§8).  Rules are AST-based and deliberately syntactic: they flag the
*pattern* (a ``time.time()`` call, iteration over a bare ``set``), not
a proven misbehaviour — a line that is actually fine carries a
``# repro-lint: disable=CODE`` suppression explaining itself by
existing.

Scoping
-------
``REPRO001``/``REPRO002`` (host time, host entropy) apply everywhere
except allowlisted driver files; the container-ordering rules
(``REPRO003``…\\ ``REPRO007``) apply only inside the simulation
packages named by the config, where event ordering is observable.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import typing

from repro.analysis.config import LintConfig


@dataclasses.dataclass(frozen=True)
class Violation:
    """One rule hit inside a module (pre-suppression)."""

    code: str
    message: str
    line: int
    column: int


class ModuleContext:
    """Everything a rule needs to inspect one parsed module."""

    def __init__(self, path: pathlib.Path, tree: ast.Module,
                 config: LintConfig) -> None:
        self.path = path
        self.tree = tree
        self.config = config
        #: True when the kernel-scoped rules apply to this file.
        self.sim_scoped = config.in_sim_package(path)
        #: local name -> canonical dotted module/attribute path, built
        #: from the module's import statements (``np`` -> ``numpy``,
        #: ``perf_counter`` -> ``time.perf_counter``).
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    local = name.asname or name.name.split(".")[0]
                    canonical = (name.name if name.asname
                                 else name.name.split(".")[0])
                    self.aliases[local] = canonical
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports never hit stdlib hazards
                for name in node.names:
                    local = name.asname or name.name
                    self.aliases[local] = f"{node.module}.{name.name}"
        # Second pass: simple local aliases of already-resolvable
        # chains — the kernel's run loops hoist hot callables
        # (``heappush = heapq.heappush``), and the rules must see
        # through the new name.  Scope-blind like everything else
        # here; a rebinding to anything unresolvable removes the
        # alias again.
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            local = node.targets[0].id
            value = node.value
            if isinstance(value, (ast.Name, ast.Attribute)):
                root = value
                while isinstance(root, ast.Attribute):
                    root = root.value
                if (isinstance(root, ast.Name)
                        and root.id in self.aliases):
                    resolved = self.resolve(value)
                    if resolved is not None and resolved != local:
                        self.aliases[local] = resolved
                        continue
            self.aliases.pop(local, None)

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted name of a Name/Attribute chain, if any."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


class Rule:
    """Base class: subclasses set the metadata and implement check()."""

    code: str = ""
    name: str = ""
    summary: str = ""
    #: When True the rule only runs inside simulation packages.
    sim_only: bool = False

    def check(self, context: ModuleContext
              ) -> typing.Iterator[Violation]:
        raise NotImplementedError

    def violation(self, node: ast.expr, message: str) -> Violation:
        return Violation(self.code, message, node.lineno,
                         node.col_offset)


# ---------------------------------------------------------------------------
# REPRO001 — host-time reads
# ---------------------------------------------------------------------------

HOST_TIME_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.thread_time", "time.thread_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "time.localtime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


class HostTimeRule(Rule):
    code = "REPRO001"
    name = "host-time-read"
    summary = ("wall-clock reads (time.time/perf_counter/datetime.now) "
               "leak host state into the simulation")

    def check(self, context: ModuleContext
              ) -> typing.Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = context.resolve(node.func)
            if resolved in HOST_TIME_CALLS:
                yield self.violation(
                    node,
                    f"host-time read {resolved}(); simulation code must "
                    "use the simulated clock (sim.now)")


# ---------------------------------------------------------------------------
# REPRO002 — unseeded / host-entropy randomness
# ---------------------------------------------------------------------------

HOST_ENTROPY_CALLS = frozenset({
    "uuid.uuid1", "uuid.uuid4", "os.urandom", "secrets.token_bytes",
    "secrets.token_hex", "secrets.token_urlsafe", "secrets.randbelow",
    "secrets.choice", "random.SystemRandom",
})


class UnseededRandomRule(Rule):
    code = "REPRO002"
    name = "unseeded-random"
    summary = ("module-level random/np.random calls and unseeded "
               "generators draw from process-global or host entropy")

    def check(self, context: ModuleContext
              ) -> typing.Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = context.resolve(node.func)
            if resolved is None:
                continue
            if resolved in HOST_ENTROPY_CALLS:
                yield self.violation(
                    node,
                    f"{resolved}() draws host entropy; derive values "
                    "from the workload seed instead")
            elif resolved in ("random.Random",
                              "numpy.random.default_rng",
                              "numpy.random.RandomState"):
                if not _has_seed_argument(node):
                    yield self.violation(
                        node,
                        f"{resolved}() without a seed falls back to "
                        "host entropy; pass an explicit seed")
            elif (resolved.startswith("random.")
                  and resolved.count(".") == 1):
                yield self.violation(
                    node,
                    f"{resolved}() uses the process-global generator; "
                    "use a seeded random.Random instance")
            elif resolved.startswith("numpy.random."):
                yield self.violation(
                    node,
                    f"{resolved}() uses numpy's global generator; use "
                    "a seeded numpy.random.Generator instance")


def _has_seed_argument(call: ast.Call) -> bool:
    """True when the constructor call pins its seed explicitly."""
    for arg in call.args:
        if not (isinstance(arg, ast.Constant) and arg.value is None):
            return True
    for keyword in call.keywords:
        if keyword.arg in ("seed", "x", None) and not (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is None):
            return True
    return False


# ---------------------------------------------------------------------------
# REPRO003 — id()-based ordering or keys
# ---------------------------------------------------------------------------

class IdentityOrderRule(Rule):
    code = "REPRO003"
    name = "identity-order"
    summary = ("id() values depend on the allocator; keys, sort "
               "orders, and logs built from them differ across runs")
    sim_only = True

    def check(self, context: ModuleContext
              ) -> typing.Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if (isinstance(node.func, ast.Name)
                    and node.func.id == "id"
                    and "id" not in context.aliases):
                yield self.violation(
                    node,
                    "id() is allocator-dependent; use a stable serial "
                    "number (e.g. Event._serial) instead")
            for keyword in node.keywords:
                if (keyword.arg == "key"
                        and isinstance(keyword.value, ast.Name)
                        and keyword.value.id == "id"
                        and "id" not in context.aliases):
                    yield self.violation(
                        keyword.value,
                        "key=id sorts by allocator address; use a "
                        "stable serial number instead")


# ---------------------------------------------------------------------------
# REPRO004 — iteration over unordered containers
# ---------------------------------------------------------------------------

class UnorderedIterationRule(Rule):
    code = "REPRO004"
    name = "unordered-iteration"
    summary = ("iterating a bare set bakes hash order into event "
               "order (dicts are insertion-ordered and exempt)")
    sim_only = True

    def check(self, context: ModuleContext
              ) -> typing.Iterator[Violation]:
        for node in ast.walk(context.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for iterable in iters:
                reason = _unordered_reason(context, iterable)
                if reason:
                    yield self.violation(
                        iterable,
                        f"iteration over {reason}; wrap in sorted() "
                        "with a deterministic key (or use an ordered "
                        "container)")


def _unordered_reason(context: ModuleContext,
                      node: ast.expr) -> str | None:
    # dict iteration (including .keys()/.values()/.items()) is NOT
    # flagged: dicts are insertion-ordered since Python 3.7, so their
    # iteration order is exactly as reproducible as the inserts — which
    # the other rules police at the insertion sites.
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set literal"
    if isinstance(node, ast.Call):
        resolved = context.resolve(node.func)
        if resolved in ("set", "frozenset"):
            return f"a bare {resolved}()"
    return None


# ---------------------------------------------------------------------------
# REPRO005 — floats as dict keys
# ---------------------------------------------------------------------------

class FloatKeyRule(Rule):
    code = "REPRO005"
    name = "float-dict-key"
    summary = ("float keys alias under rounding drift and make table "
               "lookups representation-dependent")
    sim_only = True

    def check(self, context: ModuleContext
              ) -> typing.Iterator[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if (isinstance(key, ast.Constant)
                            and type(key.value) is float):
                        yield self.violation(
                            key,
                            f"float {key.value!r} used as a dict key; "
                            "key on an int or a quantised string")
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets
                           if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if (isinstance(target, ast.Subscript)
                            and isinstance(target.slice, ast.Constant)
                            and type(target.slice.value) is float):
                        yield self.violation(
                            target.slice,
                            f"float {target.slice.value!r} used as a "
                            "subscript-store key; key on an int or a "
                            "quantised string")


# ---------------------------------------------------------------------------
# REPRO006 — default-__hash__ objects in ordered containers
# ---------------------------------------------------------------------------

HEAP_PUSH_CALLS = frozenset({"heapq.heappush", "heapq.heapify"})
SORT_CALLS = frozenset({"sorted"})


class DefaultHashOrderingRule(Rule):
    code = "REPRO006"
    name = "default-hash-ordering"
    summary = ("objects with the default identity __hash__/__eq__ as "
               "the leading heap or sort key tie-break by id()")
    sim_only = True

    def check(self, context: ModuleContext
              ) -> typing.Iterator[Violation]:
        unsafe = _default_hash_classes(context.tree)
        if not unsafe:
            return
        bindings = _constructor_bindings(context.tree, unsafe)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = context.resolve(node.func)
            candidates: list[ast.expr] = []
            if resolved in HEAP_PUSH_CALLS and node.args:
                candidates.append(node.args[-1])
            elif resolved in SORT_CALLS and node.args:
                if any(kw.arg == "key" for kw in node.keywords):
                    continue  # an explicit key decides the order
                candidates.append(node.args[0])
            for candidate in candidates:
                culprit = _leading_unsafe_element(
                    candidate, unsafe, bindings)
                if culprit is not None:
                    yield self.violation(
                        culprit[0],
                        f"instance of {culprit[1]!r} (default "
                        "identity __hash__, no __lt__) is the leading "
                        "comparison key of an ordered container; "
                        "prepend a unique serial number")


def _default_hash_classes(tree: ast.Module) -> dict[str, ast.ClassDef]:
    """Module classes relying on identity hash with no ordering."""
    unsafe: dict[str, ast.ClassDef] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if any(not (isinstance(base, ast.Name)
                    and base.id == "object")
               for base in node.bases):
            continue  # inherited behaviour unknowable statically
        defined = {child.name for child in node.body
                   if isinstance(child,
                                 (ast.FunctionDef, ast.AsyncFunctionDef))}
        if not defined & {"__hash__", "__eq__", "__lt__"}:
            unsafe[node.name] = node
    return unsafe


def _constructor_bindings(tree: ast.Module,
                          unsafe: dict[str, ast.ClassDef]
                          ) -> dict[str, str]:
    """name -> unsafe class, from simple ``x = Cls(...)`` assignments.

    A deliberately shallow, scope-blind heuristic: a later rebinding
    to anything else removes the name again.
    """
    bindings: dict[str, str] = {}
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            continue
        name = node.targets[0].id
        value = node.value
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in unsafe):
            bindings[name] = value.func.id
        else:
            bindings.pop(name, None)
    return bindings


def _leading_unsafe_element(node: ast.expr,
                            unsafe: dict[str, ast.ClassDef],
                            bindings: dict[str, str]
                            ) -> tuple[ast.expr, str] | None:
    """(node, class name) when the *leading* comparison key is unsafe.

    Elements after position 0 of a tuple are trusted: the established
    kernel idiom places a unique sequence number ahead of the payload,
    which guarantees comparison never reaches it.
    """
    def classify(element: ast.expr) -> str | None:
        if (isinstance(element, ast.Call)
                and isinstance(element.func, ast.Name)
                and element.func.id in unsafe):
            return element.func.id
        if isinstance(element, ast.Name):
            return bindings.get(element.id)
        return None

    if isinstance(node, ast.Tuple) and node.elts:
        name = classify(node.elts[0])
        if name:
            return node.elts[0], name
        return None
    if isinstance(node, (ast.List, ast.Set)):
        for element in node.elts:
            found = _leading_unsafe_element(element, unsafe, bindings)
            if found:
                return found
        return None
    name = classify(node)
    if name:
        return node, name
    return None


# ---------------------------------------------------------------------------
# REPRO007 — address-bearing formatting / hash-keyed ordering
# ---------------------------------------------------------------------------

class AddressFormattingRule(Rule):
    code = "REPRO007"
    name = "address-formatting"
    summary = ("formatting a default-__repr__ instance embeds the "
               "allocator address ('<X object at 0x...>'); key=hash "
               "orders by id() or the per-process hash seed")
    sim_only = True

    def check(self, context: ModuleContext
              ) -> typing.Iterator[Violation]:
        unsafe = _default_repr_classes(context.tree)
        bindings = _constructor_bindings(context.tree, unsafe)
        for node in ast.walk(context.tree):
            if isinstance(node, ast.FormattedValue):
                name = _unsafe_instance(node.value, unsafe, bindings)
                if name:
                    yield self.violation(
                        node.value,
                        f"f-string interpolates an instance of "
                        f"{name!r}, whose default __repr__ embeds the "
                        "allocator address; define __repr__ from "
                        "stable fields (e.g. a name or serial)")
            elif isinstance(node, ast.Call):
                yield from self._check_call(node, context, unsafe,
                                            bindings)
            elif (isinstance(node, ast.BinOp)
                    and isinstance(node.op, ast.Mod)
                    and isinstance(node.left, ast.Constant)
                    and isinstance(node.left.value, str)):
                values = (node.right.elts
                          if isinstance(node.right, ast.Tuple)
                          else [node.right])
                for value in values:
                    name = _unsafe_instance(value, unsafe, bindings)
                    if name:
                        yield self.violation(
                            value,
                            f"%-formatting an instance of {name!r} "
                            "embeds the allocator address; define "
                            "__repr__ from stable fields")

    def _check_call(self, node: ast.Call, context: ModuleContext,
                    unsafe: dict[str, ast.ClassDef],
                    bindings: dict[str, str]
                    ) -> typing.Iterator[Violation]:
        resolved = context.resolve(node.func)
        if resolved in ("str", "repr", "format") and node.args:
            name = _unsafe_instance(node.args[0], unsafe, bindings)
            if name:
                yield self.violation(
                    node.args[0],
                    f"{resolved}() of an instance of {name!r} yields "
                    "the default address-bearing repr; define "
                    "__repr__ from stable fields")
        elif (isinstance(node.func, ast.Attribute)
                and node.func.attr == "format"
                and isinstance(node.func.value, ast.Constant)
                and isinstance(node.func.value.value, str)):
            arguments = list(node.args)
            arguments.extend(kw.value for kw in node.keywords)
            for argument in arguments:
                name = _unsafe_instance(argument, unsafe, bindings)
                if name:
                    yield self.violation(
                        argument,
                        f"str.format() of an instance of {name!r} "
                        "yields the default address-bearing repr; "
                        "define __repr__ from stable fields")
        for keyword in node.keywords:
            if (keyword.arg == "key"
                    and isinstance(keyword.value, ast.Name)
                    and keyword.value.id == "hash"
                    and "hash" not in context.aliases):
                yield self.violation(
                    keyword.value,
                    "key=hash orders by id() for default-__hash__ "
                    "objects and by the per-process hash seed for "
                    "strings; key on a stable field instead")


def _default_repr_classes(tree: ast.Module) -> dict[str, ast.ClassDef]:
    """Module classes that would print as ``<X object at 0x...>``.

    Decorated classes are skipped (a decorator such as ``dataclass``
    may synthesise ``__repr__``); so are classes with non-``object``
    bases, whose inherited behaviour is unknowable statically.
    """
    unsafe: dict[str, ast.ClassDef] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if node.decorator_list:
            continue
        if any(not (isinstance(base, ast.Name)
                    and base.id == "object")
               for base in node.bases):
            continue
        defined = {child.name for child in node.body
                   if isinstance(child,
                                 (ast.FunctionDef, ast.AsyncFunctionDef))}
        if not defined & {"__repr__", "__str__", "__format__"}:
            unsafe[node.name] = node
    return unsafe


def _unsafe_instance(node: ast.expr,
                     unsafe: dict[str, ast.ClassDef],
                     bindings: dict[str, str]) -> str | None:
    """Class name when ``node`` is provably an unsafe-class instance."""
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in unsafe):
        return node.func.id
    if isinstance(node, ast.Name):
        return bindings.get(node.id)
    return None


#: The registry, in code order.  ``lint_file`` iterates this.
RULES: tuple[Rule, ...] = (
    HostTimeRule(),
    UnseededRandomRule(),
    IdentityOrderRule(),
    UnorderedIterationRule(),
    FloatKeyRule(),
    DefaultHashOrderingRule(),
    AddressFormattingRule(),
)

RULES_BY_CODE: dict[str, Rule] = {rule.code: rule for rule in RULES}
