"""Whole-program effect analysis and commutativity certificates.

This package closes the gap between the *runtime* tie auditor
(:mod:`repro.analysis.audit`) and what can be *proved* about
same-timestamp event cohorts: it walks every module of the sim-scoped
packages, infers per-callable effect summaries (reads/writes of shared
simulation state, event scheduling, resource/store queue traffic, RNG
draws, with a conservative "opaque" lattice top for dynamic dispatch),
attributes the event-site labels the auditor records to the spawn and
resource-construction sites that produce them, and derives pairwise
**commutativity certificates** between those site patterns.

Layout
------
* :mod:`~repro.analysis.effects.model` — the effect lattice: footprint
  strings, :class:`~repro.analysis.effects.model.EffectSummary`, the
  pairwise conflict test.
* :mod:`~repro.analysis.effects.sites` — the label-pattern algebra:
  deriving a normalised label pattern from a name expression, wrapper
  template substitution, and the pattern matcher the runtime gate uses.
* :mod:`~repro.analysis.effects.analyzer` — the AST walker: call
  graph over the sim packages (reusing the alias resolution of
  :class:`repro.analysis.rules.ModuleContext`), effect inference with
  fixpoint propagation, spawn-wrapper recognition, kernel-safety.
* :mod:`~repro.analysis.effects.certificates` — certificate
  derivation, the JSON table format, the runtime
  :class:`~repro.analysis.effects.certificates.CertificateTable`, and
  :class:`~repro.analysis.effects.certificates.CertificateError`.

Run ``python -m repro.analysis.effects --emit-certs`` to (re)generate
the table; the simulator loads it behind ``REPRO_SCHED_CERTS`` (see
DESIGN.md §12).
"""

from repro.analysis.effects.certificates import (
    CertificateError,
    CertificateTable,
    build_table,
    load_table,
)
from repro.analysis.effects.model import EffectSummary, pair_verdict

__all__ = [
    "CertificateError",
    "CertificateTable",
    "EffectSummary",
    "build_table",
    "load_table",
    "pair_verdict",
]
