"""Whole-program effect analysis over the sim-scoped packages.

The analyzer parses every module of the simulation packages (the same
``sim-packages`` set the purity linter scopes to), builds a module-level
call graph using the alias resolution of
:class:`repro.analysis.rules.ModuleContext`, and infers one
:class:`~repro.analysis.effects.model.EffectSummary` per callable by a
fixpoint over the graph.  On top of the summaries it attributes the
event-site labels the tie auditor records to their *spawn sites* —
including through spawn wrappers like
``Scheduler.execute_phase`` — and to the ``Resource``/``Store``
construction sites whose names become ``resource:``/``store:`` labels.

Trust boundary
--------------
``repro.sim`` (the kernel) is the trusted computing base: its modules
are **not** analyzed; calls into its API are modelled intrinsically
(``Resource.use`` is queue traffic on the receiver's name pattern,
``Simulator.process`` is a spawn, ``Simulator.run``/``step`` from model
code is a kernel-safety violation).  Everything else in the sim scope —
``repro.core``, ``repro.engine``, ``repro.network``, ``repro.storage``
— is model code and must be *kernel-safe*: it may create events and
wait on them but never drive or introspect the scheduler.  That
whole-program invariant is what makes a statically attributed cohort
batchable even when its state footprint is opaque.

Conservatism
------------
Unresolvable dynamic dispatch joins the ``opaque`` lattice top; a
receiver whose class cannot be resolved widens to a ``*`` wildcard
footprint; generic container/str methods are modelled as local reads
(mutating ones as writes through the receiver chain).  The one known
imprecision — shared objects flowing through differently named
parameters are keyed by parameter name — errs toward missing a
*cross-site* conflict only; same-site conflicts key identically, and
the runtime cross-check (``REPRO_SCHED_CERTS=check``) backstops the
static verdicts in any case.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import typing

from repro.analysis.config import LintConfig, load_lint_config
from repro.analysis.rules import ModuleContext
from repro.analysis.effects.model import EffectSummary
from repro.analysis.effects.sites import (
    NameTemplate,
    SitePattern,
    name_template,
    pattern_of,
)

#: Builtins whose calls neither touch shared simulation state nor
#: dispatch dynamically.
PURE_BUILTINS = frozenset({
    "abs", "all", "any", "bool", "bytes", "callable", "chr", "dict",
    "divmod", "enumerate", "filter", "float", "format", "frozenset",
    "getattr", "hasattr", "hash", "int", "isinstance", "issubclass",
    "iter", "len", "list", "map", "max", "min", "next", "object",
    "ord", "print", "range", "repr", "reversed", "round", "set",
    "slice", "sorted", "str", "sum", "tuple", "type", "vars", "zip",
})

#: Stdlib/numeric modules whose functions are pure with respect to
#: shared simulation state (they may build local containers).
PURE_MODULE_PREFIXES = (
    "math.", "bisect.", "itertools.", "operator.", "collections.",
    "dataclasses.", "typing.", "heapq.", "json.", "re.", "struct.",
    "functools.", "numpy.", "enum.", "abc.", "copy.", "string.",
    "textwrap.", "pathlib.", "array.",
)

#: RNG call prefixes / method names: both sides drawing from the
#: (shared, seeded) workload stream is order-sensitive.
RNG_PREFIXES = ("random.", "numpy.random.")
RNG_METHODS = frozenset({
    "random", "randint", "randrange", "uniform", "normal", "shuffle",
    "choice", "choices", "sample", "integers", "permutation",
})

#: Container/str methods modelled as reads through the receiver.
PURE_METHODS = frozenset({
    "copy", "count", "decode", "encode", "endswith", "format", "get",
    "index", "items", "join", "keys", "lower", "lstrip", "rsplit",
    "rstrip", "split", "startswith", "strip", "upper", "values",
    "most_common", "tolist", "astype", "sum", "mean", "reshape",
    "nonzero", "searchsorted", "item", "view", "snapshot",
})

#: Container methods modelled as writes through the receiver.
MUTATING_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "fill", "insert", "pop", "popitem", "popleft", "remove",
    "reverse", "setdefault", "sort", "update",
})

#: Kernel API modelled intrinsically (see the trust boundary note).
SIM_FACTORIES = frozenset({"timeout", "event", "all_of", "any_of"})
EVENT_TRIGGERS = frozenset({"succeed", "fail"})
RESOURCE_METHODS = frozenset({"use", "request", "release"})
STORE_METHODS = frozenset({"put", "get"})

#: Simulator attributes/methods model code must never reach.
KERNEL_PRIVATE_ATTRS = frozenset({
    "_heap", "_calendar", "_urgent", "_sequence", "_event_pool",
    "_crashed", "_cohort_cache", "_cohort_benign_fn", "_event_serial",
    "_fire", "_schedule", "_resume",
})
KERNEL_DRIVE_METHODS = frozenset({"run", "step"})

#: Generic method names too ambiguous for the unique-name fallback.
FALLBACK_EXCLUDED = frozenset({
    "run", "start", "stop", "close", "open", "send", "read", "write",
    "next", "throw",
})
_FALLBACK_LIMIT = 4


@dataclasses.dataclass
class CallableInfo:
    """One analyzed function or method."""

    qualname: str
    module: str
    path: pathlib.Path
    node: ast.FunctionDef | ast.AsyncFunctionDef
    context: ModuleContext
    cls: str | None = None
    params: tuple[str, ...] = ()
    annotations: dict[str, str] = dataclasses.field(default_factory=dict)
    #: Direct spawn records found in the body (see SpawnRecord).
    spawns: list["SpawnRecord"] = dataclasses.field(default_factory=list)

    @property
    def origin(self) -> str:
        return f"{self.path.as_posix()}:{self.node.lineno}"


@dataclasses.dataclass
class SpawnRecord:
    """One ``sim.process(...)`` site inside a callable."""

    template: NameTemplate
    origin: str
    #: Resolved generator-factory qualnames (direct spawns).
    gen_callables: tuple[str, ...] = ()
    #: True when the generator flows in through the enclosing
    #: function's parameters (wrapper shape) — call sites supply it.
    gen_from_params: bool = False
    #: False when the generator expression could not be traced.
    resolved: bool = True


@dataclasses.dataclass
class ClassInfo:
    name: str
    bases: tuple[str, ...] = ()
    methods: dict[str, str] = dataclasses.field(default_factory=dict)
    #: attr -> class name, from ``self.x = Cls(...)`` / annotated params.
    attr_types: dict[str, str] = dataclasses.field(default_factory=dict)
    #: attr -> queue footprint (``resource:<pat>`` / ``store:<pat>``).
    attr_queues: dict[str, str] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class ProgramAnalysis:
    """Everything the certificate builder needs."""

    callables: dict[str, CallableInfo]
    summaries: dict[str, EffectSummary]
    classes: dict[str, ClassInfo]
    #: Attributed event-site patterns (``process:``/``done:`` +
    #: ``resource:``/``store:``), keyed by pattern.
    sites: dict[str, SitePattern]
    #: Per-site-pattern effect footprints.
    site_summaries: dict[str, EffectSummary]
    #: Kernel-unsafe callables (qualname -> reasons).
    unsafe: dict[str, tuple[str, ...]]
    #: Qualnames reachable from any event site.
    reachable: set[str]

    @property
    def sites_kernel_safe(self) -> bool:
        """The whole-program invariant: no event-site code drives or
        introspects the scheduler."""
        return not any(qn in self.unsafe for qn in self.reachable)

    def suspects(self) -> list[str]:
        """The inventory ``--check`` regresses against: kernel-unsafe
        callables, opaque site footprints, unresolved spawn sites."""
        out = [f"unsafe:{qn}" for qn in sorted(self.unsafe)]
        for pattern in sorted(self.sites):
            site = self.sites[pattern]
            summary = self.site_summaries[pattern]
            if not site.resolved:
                out.append(f"unresolved-site:{pattern}")
            elif summary.opaque:
                out.append(f"opaque-site:{pattern}")
        return out


def _module_name(path: pathlib.Path) -> str:
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _annotation_class(node: ast.expr | None) -> str | None:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip().strip("'\"")
        return text.split(".")[-1] or None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_queue_constructor(context: ModuleContext,
                          node: ast.Call) -> str | None:
    """``resource``/``store`` when the call constructs one."""
    resolved = context.resolve(node.func)
    name = resolved.split(".")[-1] if resolved else None
    if name == "Resource":
        return "resource"
    if name == "Store":
        return "store"
    return None


def _queue_pattern(kind: str, node: ast.Call) -> str:
    name_arg: ast.expr | None = None
    for keyword in node.keywords:
        if keyword.arg == "name":
            name_arg = keyword.value
    if name_arg is None:
        # Resource()/Store() default names.
        return f"{kind}:{kind}"
    return f"{kind}:{pattern_of(name_arg)}"


class Analyzer:
    """Builds a :class:`ProgramAnalysis` over a set of modules."""

    def __init__(self, config: LintConfig | None = None) -> None:
        self.config = config or LintConfig()
        self.callables: dict[str, CallableInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.summaries: dict[str, EffectSummary] = {}
        self.edges: dict[str, set[str]] = {}
        self.functions_by_name: dict[str, list[str]] = {}
        self.methods_by_name: dict[str, list[str]] = {}
        self.queue_sites: dict[str, SitePattern] = {}
        #: (caller qualname, callee qualname, call node) — replayed
        #: after the fixpoint to expand wrapper spawn sites.
        self.call_records: list[tuple[str, str, ast.Call]] = []
        self._modules: list[tuple[pathlib.Path, ast.Module,
                                  ModuleContext]] = []

    # -- loading ---------------------------------------------------------

    def load_paths(self, paths: typing.Iterable[pathlib.Path]) -> None:
        for path in sorted(set(paths)):
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
            context = ModuleContext(path, tree, self.config)
            self._modules.append((path, tree, context))
        self._collect_definitions()
        self._collect_attr_registries()

    def _collect_definitions(self) -> None:
        for path, tree, context in self._modules:
            module = _module_name(path)
            for node in tree.body:
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    self._add_callable(path, context, module, node, None)
                elif isinstance(node, ast.ClassDef):
                    bases = tuple(
                        base.id if isinstance(base, ast.Name)
                        else base.attr if isinstance(base, ast.Attribute)
                        else "?" for base in node.bases)
                    info = self.classes.setdefault(
                        node.name, ClassInfo(node.name))
                    info.bases = info.bases + tuple(
                        b for b in bases if b not in info.bases)
                    for child in node.body:
                        if isinstance(child, (ast.FunctionDef,
                                              ast.AsyncFunctionDef)):
                            self._add_callable(path, context, module,
                                               child, node.name)

    def _add_callable(self, path: pathlib.Path, context: ModuleContext,
                      module: str,
                      node: ast.FunctionDef | ast.AsyncFunctionDef,
                      cls: str | None) -> None:
        qualname = (f"{module}.{cls}.{node.name}" if cls
                    else f"{module}.{node.name}")
        args = node.args
        names = [a.arg for a in (*args.posonlyargs, *args.args)]
        annotations = {}
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            ann = _annotation_class(arg.annotation)
            if ann is not None:
                annotations[arg.arg] = ann
        params = tuple(n for n in names if n != "self")
        info = CallableInfo(qualname, module, path, node, context,
                            cls=cls, params=params,
                            annotations=annotations)
        self.callables[qualname] = info
        self.summaries[qualname] = EffectSummary()
        self.edges[qualname] = set()
        if cls is None:
            self.functions_by_name.setdefault(
                node.name, []).append(qualname)
        else:
            self.classes[cls].methods[node.name] = qualname
            self.methods_by_name.setdefault(
                node.name, []).append(qualname)

    def _collect_attr_registries(self) -> None:
        """``self.x = Cls(...)`` / ``self.x = <annotated param>`` →
        attribute type and queue registries, plus queue site patterns."""
        for info in self.callables.values():
            if info.cls is None:
                continue
            cls = self.classes[info.cls]
            for node in ast.walk(info.node):
                if not (isinstance(node, ast.Assign)
                        and len(node.targets) == 1):
                    continue
                target = node.targets[0]
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                value = node.value
                if isinstance(value, ast.Call):
                    kind = _is_queue_constructor(info.context, value)
                    if kind is not None:
                        pattern = _queue_pattern(kind, value)
                        cls.attr_queues[target.attr] = pattern
                        origin = (f"{info.path.as_posix()}:"
                                  f"{value.lineno}")
                        self.queue_sites.setdefault(
                            pattern, SitePattern(pattern, origin))
                        continue
                    ctor = None
                    if isinstance(value.func, ast.Name):
                        ctor = value.func.id
                    elif isinstance(value.func, ast.Attribute):
                        ctor = value.func.attr
                    if ctor in self.classes:
                        cls.attr_types[target.attr] = ctor
                elif (isinstance(value, ast.Name)
                        and value.id in info.annotations):
                    ann = info.annotations[value.id]
                    if ann in self.classes or ann == "Simulator":
                        cls.attr_types[target.attr] = ann

    # -- type/receiver resolution ----------------------------------------

    def _hierarchy(self, cls: str) -> list[str]:
        """``cls`` plus its known bases and subclasses (for method and
        attribute lookups under inheritance/override)."""
        related = [cls]
        info = self.classes.get(cls)
        if info is not None:
            related.extend(b for b in info.bases if b in self.classes)
        for name, other in self.classes.items():
            if cls in other.bases and name not in related:
                related.append(name)
        return related

    def _class_attr(self, cls: str, attr: str,
                    registry: str) -> str | None:
        for name in self._hierarchy(cls):
            info = self.classes.get(name)
            if info is None:
                continue
            value = getattr(info, registry).get(attr)
            if value is not None:
                return value
        return None

    def _class_of(self, node: ast.expr, info: CallableInfo,
                  local_types: dict[str, str]) -> str | None:
        if isinstance(node, ast.Name):
            if node.id == "self":
                return info.cls
            return (local_types.get(node.id)
                    or info.annotations.get(node.id))
        if isinstance(node, ast.Attribute):
            base = self._class_of(node.value, info, local_types)
            if base is not None:
                return self._class_attr(base, node.attr, "attr_types")
            return None
        if isinstance(node, ast.Call):
            if (isinstance(node.func, ast.Name)
                    and node.func.id == "super" and info.cls):
                bases = self.classes[info.cls].bases
                return bases[0] if bases else None
            if (isinstance(node.func, ast.Name)
                    and node.func.id in self.classes):
                return node.func.id
        return None

    def _queue_of(self, node: ast.expr, info: CallableInfo,
                  local_types: dict[str, str],
                  local_queues: dict[str, str]) -> str | None:
        if isinstance(node, ast.Name):
            return local_queues.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._class_of(node.value, info, local_types)
            if base is not None:
                return self._class_attr(base, node.attr, "attr_queues")
        return None

    @staticmethod
    def _sim_ish(node: ast.expr, recv_cls: str | None) -> bool:
        if recv_cls == "Simulator":
            return True
        if isinstance(node, ast.Name):
            return node.id == "sim"
        if isinstance(node, ast.Attribute):
            return node.attr == "sim"
        return False

    # -- per-callable effect walk ----------------------------------------

    def analyse(self) -> None:
        for qualname in list(self.callables):
            self._analyse_callable(self.callables[qualname])
        self._fixpoint()

    def _local_bindings(self, info: CallableInfo
                        ) -> tuple[dict[str, str], dict[str, str]]:
        """Shallow ``x = Cls(...)`` / ``x = Store(...)`` bindings."""
        local_types: dict[str, str] = {}
        local_queues: dict[str, str] = {}
        for node in ast.walk(info.node):
            if not (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            name = node.targets[0].id
            value = node.value
            local_types.pop(name, None)
            local_queues.pop(name, None)
            if isinstance(value, ast.Call):
                kind = _is_queue_constructor(info.context, value)
                if kind is not None:
                    pattern = _queue_pattern(kind, value)
                    local_queues[name] = pattern
                    origin = f"{info.path.as_posix()}:{value.lineno}"
                    self.queue_sites.setdefault(
                        pattern, SitePattern(pattern, origin))
                    continue
                if (isinstance(value.func, ast.Name)
                        and value.func.id in self.classes):
                    local_types[name] = value.func.id
            elif isinstance(value, (ast.Name, ast.Attribute)):
                cls = self._class_of(value, info, local_types)
                if cls is not None:
                    local_types[name] = cls
        return local_types, local_queues

    def _analyse_callable(self, info: CallableInfo) -> None:
        summary = self.summaries[info.qualname]
        context = info.context
        trusted = "repro/sim" in info.path.as_posix()
        local_types, local_queues = self._local_bindings(info)
        handled_funcs: set[int] = set()
        globals_declared: set[str] = set()

        def attr_footprint(node: ast.Attribute) -> str | None:
            root: ast.expr = node
            while isinstance(root, ast.Attribute):
                root = root.value
            if (isinstance(root, ast.Name)
                    and root.id in context.aliases):
                return None  # module/global attribute, not sim state
            cls = self._class_of(node.value, info, local_types)
            return f"attr:{cls or '*'}.{node.attr}"

        def note_param_write(node: ast.expr) -> None:
            if (isinstance(node, ast.Name)
                    and node.id in info.params):
                summary.writes.add(f"attr:*.{node.id}")

        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                globals_declared.update(node.names)
                for name in node.names:
                    summary.writes.add(f"attr:{info.module}.{name}")
            elif isinstance(node, ast.Attribute):
                if id(node) in handled_funcs:
                    continue
                footprint = attr_footprint(node)
                if footprint is None:
                    continue
                if (not trusted
                        and node.attr in KERNEL_PRIVATE_ATTRS):
                    summary.unsafe += (
                        f"touches scheduler internal .{node.attr} "
                        f"at {info.path.name}:{node.lineno}",)
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    summary.writes.add(footprint)
                else:
                    summary.reads.add(footprint)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        if isinstance(target.value, ast.Attribute):
                            footprint = attr_footprint(target.value)
                            if footprint is not None:
                                summary.writes.add(footprint)
                        else:
                            note_param_write(target.value)
            elif isinstance(node, ast.Call):
                self._handle_call(node, info, summary, local_types,
                                  local_queues, handled_funcs, trusted)
        # Nested defs were walked as part of the body (their effects
        # execute under this callable's sites); their parameters may
        # shadow, which only widens footprints.

    def _handle_call(self, node: ast.Call, info: CallableInfo,
                     summary: EffectSummary,
                     local_types: dict[str, str],
                     local_queues: dict[str, str],
                     handled_funcs: set[int],
                     trusted: bool) -> None:
        context = info.context
        func = node.func
        if isinstance(func, ast.Name):
            resolved = context.resolve(func)
            name = func.id
            if resolved and resolved.startswith(RNG_PREFIXES):
                summary.rng = True
                return
            if (name in PURE_BUILTINS
                    or (resolved or "").startswith(PURE_MODULE_PREFIXES)
                    or name.endswith(("Error", "Exception", "Crash",
                                      "Warning"))):
                return
            kind = _is_queue_constructor(context, node)
            if kind is not None:
                return  # construction handled by the registries
            if name in self.classes:
                ctor = self.classes[name].methods.get("__init__")
                if ctor is not None:
                    self._edge(info.qualname, ctor, node)
                return
            targets = self.functions_by_name.get(name, ())
            if targets:
                for target in targets:
                    self._edge(info.qualname, target, node)
                return
            if resolved and "." in resolved:
                # e.g. ``from repro.core.joins.common import scan_pages``
                tail = resolved.rsplit(".", 1)[1]
                targets = self.functions_by_name.get(tail, ())
                if targets:
                    for target in targets:
                        self._edge(info.qualname, target, node)
                    return
                if resolved.startswith(PURE_MODULE_PREFIXES):
                    return
            if name == "super":
                return
            summary.opaque = True
            return
        if not isinstance(func, ast.Attribute):
            summary.opaque = True  # e.g. calling a subscripted value
            return
        handled_funcs.add(id(func))
        attr = func.attr
        receiver = func.value
        resolved = context.resolve(func)
        if resolved is not None:
            if resolved.startswith(RNG_PREFIXES):
                summary.rng = True
                return
            if resolved.startswith(PURE_MODULE_PREFIXES):
                return
        recv_cls = self._class_of(receiver, info, local_types)
        # 1) resolved model method
        if recv_cls is not None:
            target = self._class_attr(recv_cls, attr, "methods")
            if target is not None:
                self._edge(info.qualname, target, node)
                return
        # 2) known queue object
        queue = self._queue_of(receiver, info, local_types,
                               local_queues)
        if queue is not None and attr in (RESOURCE_METHODS
                                          | STORE_METHODS):
            summary.queues.add(queue)
            summary.schedules = True
            return
        # 3) kernel intrinsics
        if self._sim_ish(receiver, recv_cls):
            if attr == "process":
                summary.schedules = True
                self._record_spawn(node, info)
                return
            if attr in SIM_FACTORIES:
                summary.schedules = True
                return
            if attr in KERNEL_DRIVE_METHODS and not trusted:
                summary.unsafe += (
                    f"drives the scheduler via sim.{attr}() at "
                    f"{info.path.name}:{node.lineno}",)
                return
        if attr in EVENT_TRIGGERS:
            summary.schedules = True
            return
        if attr in RESOURCE_METHODS:
            summary.queues.add("resource:*")
            summary.schedules = True
            return
        if attr == "put":
            summary.queues.add("store:*")
            summary.schedules = True
            return
        # 4) generic container/str methods through the receiver
        if attr in MUTATING_METHODS or attr in PURE_METHODS:
            if isinstance(receiver, ast.Attribute):
                root: ast.expr = receiver
                while isinstance(root, ast.Attribute):
                    root = root.value
                if not (isinstance(root, ast.Name)
                        and root.id in context.aliases):
                    cls = self._class_of(receiver.value, info,
                                         local_types)
                    footprint = f"attr:{cls or '*'}.{receiver.attr}"
                    if attr in MUTATING_METHODS:
                        summary.writes.add(footprint)
                    else:
                        summary.reads.add(footprint)
            elif (isinstance(receiver, ast.Name)
                    and receiver.id in info.params
                    and attr in MUTATING_METHODS):
                summary.writes.add(f"attr:*.{receiver.id}")
            return
        # 5) RNG methods
        if attr in RNG_METHODS:
            summary.rng = True
            return
        # 6) unique-name fallback across all collected methods
        if attr not in FALLBACK_EXCLUDED:
            targets = self.methods_by_name.get(attr, ())
            if targets and len(targets) <= _FALLBACK_LIMIT:
                for target in targets:
                    self._edge(info.qualname, target, node)
                return
        summary.opaque = True

    def _edge(self, caller: str, callee: str, node: ast.Call) -> None:
        self.edges[caller].add(callee)
        self.call_records.append((caller, callee, node))

    def _record_spawn(self, node: ast.Call, info: CallableInfo) -> None:
        template = NameTemplate("*")
        has_name = False
        for keyword in node.keywords:
            if keyword.arg == "name":
                has_name = True
                template = name_template(keyword.value, info.params)
        gen_callables: list[str] = []
        gen_from_params = False
        resolved = True
        if node.args:
            gen = node.args[0]
            if isinstance(gen, ast.Name) and gen.id in info.params:
                gen_from_params = True
            else:
                gen_callables = self._harvest(gen, info)
                if not gen_callables:
                    if isinstance(gen, ast.Name):
                        # A loop/unpacking local (e.g. execute_phase's
                        # ``for _, gen in ...``): the generators flow
                        # in through the caller's arguments.
                        gen_from_params = True
                    else:
                        resolved = False
                elif (not has_name and isinstance(gen, ast.Call)):
                    # Unnamed spawn: the runtime label falls back to
                    # the generator function's __name__.
                    fn = gen.func
                    fn_name = (fn.id if isinstance(fn, ast.Name)
                               else fn.attr
                               if isinstance(fn, ast.Attribute)
                               else None)
                    if fn_name:
                        template = name_template(
                            ast.Constant(value=fn_name))
        else:
            resolved = False
        info.spawns.append(SpawnRecord(
            template=template,
            origin=f"{info.path.as_posix()}:{node.lineno}",
            gen_callables=tuple(gen_callables),
            gen_from_params=gen_from_params,
            resolved=resolved))

    def _harvest(self, node: ast.expr,
                 info: CallableInfo) -> list[str]:
        """Resolved model callables reachable from an expression —
        the generator factories feeding a spawn or wrapper call."""
        local_types, _ = self._local_bindings(info)
        found: list[str] = []
        names: list[str] = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                names.append(sub.id)
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if isinstance(func, ast.Name):
                targets = self.functions_by_name.get(func.id, ())
                found.extend(targets)
                if func.id in self.classes:
                    ctor = self.classes[func.id].methods.get("__init__")
                    if ctor:
                        found.append(ctor)
            elif isinstance(func, ast.Attribute):
                recv_cls = self._class_of(func.value, info, local_types)
                target = None
                if recv_cls is not None:
                    target = self._class_attr(recv_cls, func.attr,
                                              "methods")
                if target is None:
                    candidates = self.methods_by_name.get(func.attr, ())
                    if 0 < len(candidates) <= _FALLBACK_LIMIT:
                        found.extend(candidates)
                    continue
                found.append(target)
        # Name operands: harvest the statements that built them
        # (``consumers.append((site, gen(...)))`` etc.).
        for name in names:
            for stmt in ast.walk(info.node):
                if isinstance(stmt, ast.Call):
                    func = stmt.func
                    if (isinstance(func, ast.Attribute)
                            and func.attr in ("append", "extend")
                            and isinstance(func.value, ast.Name)
                            and func.value.id == name):
                        for arg in stmt.args:
                            if arg is not node:
                                found.extend(self._harvest(arg, info)
                                             if not isinstance(
                                                 arg, ast.Name)
                                             else [])
                elif (isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)
                        and stmt.targets[0].id == name
                        and stmt.value is not node
                        and not isinstance(stmt.value, ast.Name)):
                    found.extend(self._harvest(stmt.value, info))
        seen: list[str] = []
        for qualname in found:
            if qualname not in seen:
                seen.append(qualname)
        return seen

    # -- fixpoint and site derivation ------------------------------------

    def _fixpoint(self) -> None:
        changed = True
        rounds = 0
        while changed and rounds < 50:
            changed = False
            rounds += 1
            for caller, callees in self.edges.items():
                mine = self.summaries[caller]
                for callee in callees:
                    other = self.summaries.get(callee)
                    if other is not None and mine.join(other):
                        changed = True

    def _closure(self, roots: typing.Iterable[str]) -> set[str]:
        seen: set[str] = set()
        stack = [qn for qn in roots if qn in self.edges]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, ()))
        return seen

    def _site_footprint(self, callables: typing.Sequence[str],
                        resolved: bool) -> EffectSummary:
        footprint = EffectSummary()
        if not resolved or not callables:
            footprint.opaque = True
        for qualname in callables:
            other = self.summaries.get(qualname)
            if other is None:
                footprint.opaque = True
            else:
                footprint.join(other)
        return footprint

    def derive_sites(self) -> ProgramAnalysis:
        """Expand spawn records into attributed site patterns."""
        sites: dict[str, SitePattern] = {}
        site_summaries: dict[str, EffectSummary] = {}

        def add_site(pattern: str, origin: str,
                     callables: tuple[str, ...], resolved: bool,
                     footprint: EffectSummary) -> None:
            existing = sites.get(pattern)
            if existing is None:
                sites[pattern] = SitePattern(pattern, origin,
                                             callables, resolved)
                site_summaries[pattern] = footprint
            else:
                merged = tuple(dict.fromkeys(
                    existing.callables + callables))
                sites[pattern] = SitePattern(
                    existing.pattern, existing.origin, merged,
                    existing.resolved and resolved)
                site_summaries[pattern].join(footprint)

        def add_process_site(pattern: str, origin: str,
                             callables: tuple[str, ...],
                             resolved: bool) -> None:
            footprint = self._site_footprint(callables, resolved)
            add_site(f"process:{pattern}", origin, callables, resolved,
                     footprint)
            # The completion event of the same process: firing resumes
            # whatever waits on it (the spawning phase, an AllOf) —
            # statically opaque state, kernel-safe plumbing.
            done = EffectSummary(opaque=True, unsafe=footprint.unsafe)
            done.schedules = True
            add_site(f"done:{pattern}", origin, callables, resolved,
                     done)

        # Direct spawns (template has no wrapper hole).
        for info in self.callables.values():
            for record in info.spawns:
                if record.gen_from_params or record.template.param:
                    continue
                add_process_site(record.template.concrete(),
                                 record.origin, record.gen_callables,
                                 record.resolved)
        # Wrapper spawns: substitute each call site's name argument
        # and harvest its generator factories.
        for caller, callee, node in self.call_records:
            callee_info = self.callables.get(callee)
            if callee_info is None or not callee_info.spawns:
                continue
            wrapper_records = [r for r in callee_info.spawns
                               if r.gen_from_params
                               or r.template.param]
            if not wrapper_records:
                continue
            caller_info = self.callables[caller]
            harvest: list[str] = []
            resolved = True
            for arg in list(node.args) + [kw.value
                                          for kw in node.keywords]:
                harvest.extend(self._harvest(arg, caller_info))
            if not harvest:
                resolved = False
            harvest.extend([callee])  # the wrapper's own effects
            for record in wrapper_records:
                pattern = record.template.concrete()
                if record.template.param is not None:
                    arg = self._argument_for(callee_info,
                                             record.template.param,
                                             node)
                    arg_pattern = pattern_of(arg)
                    pattern = record.template.substitute(arg_pattern)
                add_process_site(
                    pattern,
                    f"{caller_info.path.as_posix()}:{node.lineno}",
                    tuple(dict.fromkeys(harvest)),
                    resolved and record.resolved)
        # Resource/Store construction sites: the hold-expiry labels.
        for pattern, site in self.queue_sites.items():
            footprint = EffectSummary(queues={pattern}, schedules=True,
                                      opaque=True)
            add_site(pattern, site.origin, (), True, footprint)

        unsafe = {qn: summary.unsafe
                  for qn, summary in self.summaries.items()
                  if summary.unsafe}
        roots = [qn for site in sites.values() for qn in site.callables]
        reachable = self._closure(roots)
        return ProgramAnalysis(
            callables=self.callables, summaries=self.summaries,
            classes=self.classes, sites=sites,
            site_summaries=site_summaries, unsafe=unsafe,
            reachable=reachable)

    @staticmethod
    def _argument_for(callee: CallableInfo, param: str,
                      node: ast.Call) -> ast.expr | None:
        for keyword in node.keywords:
            if keyword.arg == param:
                return keyword.value
        try:
            index = callee.params.index(param)
        except ValueError:
            return None
        if index < len(node.args):
            return node.args[index]
        return None


def sim_package_files(root: pathlib.Path,
                      config: LintConfig) -> list[pathlib.Path]:
    """Model-code files of the sim packages under ``root`` (the
    trusted ``repro/sim`` kernel excluded)."""
    src = root / "src" / "repro"
    if not src.is_dir():
        src = root
    files = []
    for path in sorted(src.rglob("*.py")):
        posix = path.as_posix()
        if "repro/sim/" in posix or posix.endswith("repro/sim.py"):
            continue
        if config.in_sim_package(path):
            files.append(path)
    return files


def analyse_paths(paths: typing.Sequence[pathlib.Path],
                  config: LintConfig | None = None) -> ProgramAnalysis:
    """Analyze an explicit set of model-code files."""
    analyzer = Analyzer(config)
    analyzer.load_paths(paths)
    analyzer.analyse()
    return analyzer.derive_sites()


def analyse_tree(root: pathlib.Path | None = None) -> ProgramAnalysis:
    """Analyze the repository's sim-scoped packages."""
    root = root or pathlib.Path.cwd()
    config = load_lint_config(root)
    return analyse_paths(sim_package_files(root, config), config)
