"""The effect lattice: footprints, summaries, and the conflict test.

Effects are tracked as *footprint strings* over shared simulation
state, at class-attribute granularity:

* ``attr:<Class>.<attr>`` — a read or write of an instance attribute.
  ``<Class>`` is ``*`` when the receiver's class could not be resolved
  (conservative: a wildcard overlaps every class).
* ``resource:<pattern>`` — traffic through a
  :class:`repro.sim.resources.Resource` FIFO queue (request/release/
  use), named by the normalised name pattern of its construction site
  (``resource:*.cpu``, ``resource:token-ring``).
* ``store:<pattern>`` — puts/gets on a
  :class:`repro.sim.resources.Store` mailbox.

Patterns may contain ``*`` (matches anything) and use ``#`` for digit
runs, exactly like the tie auditor's normalised labels
(:func:`repro.analysis.audit.normalise`) — the certificate machinery
matches runtime labels against these patterns verbatim.

The lattice is a powerset lattice per field with two poisoned tops:
``opaque`` (dynamic dispatch reached — the state footprint is
unknowable) and a non-empty ``unsafe`` tuple (the callable touches
scheduler internals model code must never reach).  Joins are unions;
both tops absorb.

Pairwise verdicts
-----------------
:func:`pair_verdict` classifies two footprints:

* ``commutes`` — provably disjoint: firing order cannot change any
  observable trace (response times, conformance snapshots, final
  clock).  Both sites may schedule further events: a swap permutes
  sequence numbers only among events whose own footprints are disjoint
  by induction, which is unobservable in the trace.
* ``serialized`` — the only overlap is Resource queue traffic.  The
  FIFO discipline serializes the pair (correctness is order-free) but
  queue *positions* swap with firing order, so simulated times may
  move — ``REPRO_AUDIT=reverse`` demonstrates exactly this.  Ordered
  by a held resource, not trace-commutative.
* ``conflicts`` — overlapping reads/writes of shared attributes,
  overlapping Store traffic (FIFO content order is observable), both
  sides drawing from the workload RNG stream, or either side opaque.
"""

from __future__ import annotations

import dataclasses
import re
import typing

_ESCAPED_STAR = re.compile(r"\\\*|\Z")


def compile_pattern(pattern: str) -> "re.Pattern[str]":
    """Compile a ``*``-wildcard pattern to a full-match regex.

    Everything but ``*`` is literal — labels routinely contain ``[``,
    ``]`` and ``#``, which :mod:`fnmatch` would misread as character
    classes, so the translation is done by hand.
    """
    parts = re.escape(pattern).split(r"\*")
    return re.compile(".*".join(parts) + r"\Z")


def patterns_overlap(a: str, b: str) -> bool:
    """Could patterns ``a`` and ``b`` match a common label?

    Exact when at most one side is wildcarded.  When both carry ``*``
    the test is a conservative over-approximation (compatible literal
    prefix and suffix ⇒ overlap), which errs toward *more* conflicts —
    the sound direction for certificates.
    """
    if "*" not in a:
        if "*" not in b:
            return a == b
        return compile_pattern(b).match(a) is not None
    if "*" not in b:
        return compile_pattern(a).match(b) is not None
    prefix_a, suffix_a = a.split("*", 1)[0], a.rsplit("*", 1)[1]
    prefix_b, suffix_b = b.split("*", 1)[0], b.rsplit("*", 1)[1]
    if not (prefix_a.startswith(prefix_b)
            or prefix_b.startswith(prefix_a)):
        return False
    return suffix_a.endswith(suffix_b) or suffix_b.endswith(suffix_a)


def _sets_overlap(xs: typing.Iterable[str],
                  ys: typing.Collection[str]) -> bool:
    return any(patterns_overlap(x, y) for x in xs for y in ys)


@dataclasses.dataclass
class EffectSummary:
    """One callable's (or site's) inferred effect footprint."""

    #: Shared-state footprints read (``attr:``-prefixed patterns).
    reads: set[str] = dataclasses.field(default_factory=set)
    #: Shared-state footprints written.
    writes: set[str] = dataclasses.field(default_factory=set)
    #: Resource/Store queues touched (``resource:``/``store:``
    #: prefixed patterns).
    queues: set[str] = dataclasses.field(default_factory=set)
    #: Schedules further events (process spawns, timeouts, succeed).
    schedules: bool = False
    #: Draws from the (seeded, shared-stream) workload RNG.
    rng: bool = False
    #: Lattice top: dynamic dispatch reached, footprint unknowable.
    opaque: bool = False
    #: Kernel-safety violations: reasons this callable touches
    #: scheduler internals (``Simulator._heap``, ``run()``/``step()``,
    #: clock writes).  Model code reachable from event sites must keep
    #: this empty — it is the whole-program invariant that justifies
    #: batch-firing attributed cohorts at all.
    unsafe: tuple[str, ...] = ()

    def join(self, other: "EffectSummary") -> bool:
        """In-place lattice join; True when anything changed."""
        changed = False
        for mine, theirs in ((self.reads, other.reads),
                             (self.writes, other.writes),
                             (self.queues, other.queues)):
            if not theirs <= mine:
                mine |= theirs
                changed = True
        for flag in ("schedules", "rng", "opaque"):
            if getattr(other, flag) and not getattr(self, flag):
                setattr(self, flag, True)
                changed = True
        missing = tuple(reason for reason in other.unsafe
                        if reason not in self.unsafe)
        if missing:
            self.unsafe = self.unsafe + missing
            changed = True
        return changed

    @property
    def kernel_safe(self) -> bool:
        return not self.unsafe

    def to_json(self) -> dict[str, typing.Any]:
        return {
            "reads": sorted(self.reads),
            "writes": sorted(self.writes),
            "queues": sorted(self.queues),
            "schedules": self.schedules,
            "rng": self.rng,
            "opaque": self.opaque,
            "unsafe": list(self.unsafe),
        }

    @classmethod
    def from_json(cls, data: dict[str, typing.Any]) -> "EffectSummary":
        return cls(reads=set(data.get("reads", ())),
                   writes=set(data.get("writes", ())),
                   queues=set(data.get("queues", ())),
                   schedules=bool(data.get("schedules", False)),
                   rng=bool(data.get("rng", False)),
                   opaque=bool(data.get("opaque", True)),
                   unsafe=tuple(data.get("unsafe", ())))

    @classmethod
    def opaque_summary(cls, *reasons: str) -> "EffectSummary":
        return cls(opaque=True, unsafe=tuple(reasons))


#: Verdict constants (also the strings stored in the JSON table).
COMMUTES = "commutes"
SERIALIZED = "serialized"
CONFLICTS = "conflicts"


def pair_verdict(a: EffectSummary, b: EffectSummary) -> str:
    """Classify a pair of footprints (see the module docstring)."""
    if a.opaque or b.opaque:
        return CONFLICTS
    if a.rng and b.rng:
        return CONFLICTS
    if _sets_overlap(a.writes, b.writes) \
            or _sets_overlap(a.writes, b.reads) \
            or _sets_overlap(b.writes, a.reads):
        return CONFLICTS
    a_stores = {q for q in a.queues if q.startswith("store:")}
    b_stores = {q for q in b.queues if q.startswith("store:")}
    if _sets_overlap(a_stores, b_stores):
        return CONFLICTS
    a_resources = a.queues - a_stores
    b_resources = b.queues - b_stores
    if _sets_overlap(a_resources, b_resources):
        return SERIALIZED
    return COMMUTES
