"""Label-pattern algebra for event sites.

The tie auditor labels events ``process:<name>``, ``done:<name>``,
``resource:<name>`` and normalises digit runs to ``#``
(:mod:`repro.analysis.audit`).  This module derives the matching
*pattern* for a site from the AST of the expression that builds the
name — typically an f-string — so that statically discovered spawn
and resource-construction sites can be matched against the labels the
runtime records:

* constant parts keep their text, with digit runs collapsed to ``#``
  (mirroring :func:`repro.analysis.audit.normalise`);
* interpolated fields become ``*`` — except a field that is a
  *parameter* of the enclosing spawn-wrapper function, which becomes a
  template hole filled in per call site
  (:class:`NameTemplate.substitute`).

``Scheduler.execute_phase`` is the motivating wrapper: it spawns
``sim.process(gen, name=f"{name}[{index}]")``, so its template is
``<name>[*]`` and a call site passing ``f"{label}.build"`` yields the
site pattern ``*.build[*]`` — which matches the runtime labels
``process:grace.b#.build[#]``, ``process:hybrid.formR.build[#]`` and
so on.
"""

from __future__ import annotations

import ast
import dataclasses
import re
import typing

_DIGITS = re.compile(r"\d+")
_STAR_RUN = re.compile(r"\*+")

#: Template hole marker; never appears in real labels (labels cannot
#: contain newlines).
_HOLE = "\0"


def _normalise_literal(text: str) -> str:
    """Literal name text → pattern text (digit runs to ``#``)."""
    return _DIGITS.sub("#", text)


def _collapse(pattern: str) -> str:
    """Collapse ``*`` runs (and ``*#``/``#*`` pairs) to a single ``*``."""
    pattern = _STAR_RUN.sub("*", pattern)
    while "*#" in pattern or "#*" in pattern:
        pattern = pattern.replace("*#", "*").replace("#*", "*")
    return pattern


@dataclasses.dataclass(frozen=True)
class NameTemplate:
    """A name pattern with at most one parameter-shaped hole.

    ``pattern`` uses ``*`` for dynamic fields; when ``param`` is not
    None, the single :data:`_HOLE` marker stands for the wrapper
    parameter of that name and is substituted per call site.
    """

    pattern: str
    param: str | None = None

    def substitute(self, argument_pattern: str) -> str:
        """Fill the hole with a call site's name-argument pattern."""
        if self.param is None:
            return _collapse(self.pattern)
        return _collapse(self.pattern.replace(_HOLE, argument_pattern))

    def concrete(self) -> str:
        """The pattern with any hole degraded to ``*`` (no call-site
        information available)."""
        return _collapse(self.pattern.replace(_HOLE, "*"))


def name_template(node: ast.expr | None,
                  params: typing.Collection[str] = ()) -> NameTemplate:
    """Derive the name pattern/template for a name expression.

    ``params`` names the enclosing function's parameters: an f-string
    field referencing one of them becomes the template hole (only the
    first such field — multiple holes degrade to ``*``, conservatively
    widening the pattern).
    """
    if node is None:
        return NameTemplate("*")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return NameTemplate(_normalise_literal(node.value))
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        hole: str | None = None
        for value in node.values:
            if (isinstance(value, ast.Constant)
                    and isinstance(value.value, str)):
                parts.append(_normalise_literal(value.value))
            elif (isinstance(value, ast.FormattedValue)
                    and isinstance(value.value, ast.Name)
                    and value.value.id in params and hole is None):
                hole = value.value.id
                parts.append(_HOLE)
            else:
                parts.append("*")
        return NameTemplate("".join(parts), param=hole)
    if isinstance(node, ast.Name) and node.id in params:
        return NameTemplate(_HOLE, param=node.id)
    return NameTemplate("*")


def pattern_of(node: ast.expr | None) -> str:
    """The concrete (hole-free) pattern of a name expression."""
    return name_template(node).concrete()


@dataclasses.dataclass
class SitePattern:
    """One statically attributed event-site label pattern.

    ``pattern`` is matched against the auditor's *normalised* labels
    (prefix included: ``process:*.build[*]``).  ``callables`` names the
    analyzed code whose effect summaries back the footprint;
    ``resolved`` is False when some spawned generator could not be
    traced (the footprint is then opaque, and batch eligibility rests
    on the whole-program kernel-safety invariant alone).
    """

    pattern: str
    origin: str
    callables: tuple[str, ...] = ()
    resolved: bool = True

    def key(self) -> str:
        return self.pattern
