"""CLI for the effect analyzer and certificate table.

Usage::

    python -m repro.analysis.effects                 # summary + suspects
    python -m repro.analysis.effects --emit-certs    # table JSON to stdout
    python -m repro.analysis.effects --emit-certs --write
                                                     # refresh committed table
    python -m repro.analysis.effects --check         # CI gate
    python -m repro.analysis.effects --summaries     # per-callable effects
    python -m repro.analysis.effects path/a.py ...   # explicit file set

``--check`` regenerates the analysis tree-wide and fails when (a) the
committed certificate table is stale (the tree changed but the table
was not regenerated) or (b) a *new* suspect appeared — a kernel-unsafe
callable, an opaque site footprint, or an unresolved spawn site not
acknowledged in the committed baseline.  Suspects disappearing is fine
(and reported, so the baseline can be tightened).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import typing

from repro.analysis.effects.analyzer import (
    ProgramAnalysis,
    analyse_paths,
    analyse_tree,
)
from repro.analysis.effects.certificates import (
    BASELINE_PATH,
    DEFAULT_TABLE_PATH,
    build_baseline,
    build_table,
)


def _find_root(start: pathlib.Path) -> pathlib.Path:
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return start


def _analyse(args: argparse.Namespace) -> ProgramAnalysis:
    if args.paths:
        return analyse_paths([pathlib.Path(p) for p in args.paths])
    return analyse_tree(_find_root(pathlib.Path.cwd()))


def _dump(data: dict[str, typing.Any]) -> str:
    return json.dumps(data, indent=2, sort_keys=True) + "\n"


def _print_summary(analysis: ProgramAnalysis,
                   table: dict[str, typing.Any]) -> None:
    stats = table["stats"]
    print(f"callables analysed : {len(analysis.callables)}")
    print(f"site patterns      : {stats['patterns']} "
          f"({stats['kernel_safe_patterns']} kernel-safe, "
          f"{stats['opaque_patterns']} opaque)")
    print(f"pattern pairs      : {stats['commuting_pairs']} commute, "
          f"{stats['serialized_pairs']} serialized, "
          f"{stats['conflicting_pairs']} conflict")
    print(f"kernel-safe closure: {analysis.sites_kernel_safe}")
    suspects = analysis.suspects()
    print(f"suspects           : {len(suspects)}")
    for suspect in suspects:
        print(f"  - {suspect}")


def _print_summaries(analysis: ProgramAnalysis) -> None:
    for qualname in sorted(analysis.summaries):
        summary = analysis.summaries[qualname]
        flags = [flag for flag in ("schedules", "rng", "opaque")
                 if getattr(summary, flag)]
        if summary.unsafe:
            flags.append("UNSAFE")
        print(f"{qualname}  [{', '.join(flags) or 'pure'}]")
        for kind, values in (("reads", summary.reads),
                             ("writes", summary.writes),
                             ("queues", summary.queues)):
            if values:
                print(f"    {kind}: {', '.join(sorted(values))}")
        for reason in summary.unsafe:
            print(f"    unsafe: {reason}")


def _check(analysis: ProgramAnalysis) -> int:
    table = build_table(analysis)
    failures: list[str] = []
    try:
        committed = json.loads(
            DEFAULT_TABLE_PATH.read_text(encoding="utf-8"))
    except FileNotFoundError:
        committed = None
        failures.append(f"missing committed table "
                        f"{DEFAULT_TABLE_PATH.name}")
    if committed is not None and committed != table:
        failures.append(
            f"committed table {DEFAULT_TABLE_PATH.name} is stale — "
            f"rerun 'python -m repro.analysis.effects --emit-certs "
            f"--write'")
    try:
        baseline = json.loads(
            BASELINE_PATH.read_text(encoding="utf-8"))
        known = set(baseline.get("suspects", ()))
    except FileNotFoundError:
        known = set()
        failures.append(f"missing committed baseline "
                        f"{BASELINE_PATH.name}")
    suspects = analysis.suspects()
    new = [s for s in suspects if s not in known]
    gone = sorted(known - set(suspects))
    for suspect in new:
        failures.append(f"new suspect not in baseline: {suspect}")
    for suspect in gone:
        print(f"note: baseline suspect no longer present "
              f"(baseline can be tightened): {suspect}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"effects check OK: {len(analysis.callables)} callables, "
          f"{table['stats']['patterns']} site patterns, "
          f"{len(suspects)} acknowledged suspects")
    return 0


def main(argv: typing.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.effects",
        description="Whole-program effect analysis and commutativity "
                    "certificates for the sim packages.")
    parser.add_argument("paths", nargs="*",
                        help="explicit files to analyse (default: the "
                             "sim-scoped packages of the tree)")
    parser.add_argument("--emit-certs", action="store_true",
                        help="emit the certificate table JSON")
    parser.add_argument("--out", metavar="FILE",
                        help="write --emit-certs output to FILE")
    parser.add_argument("--write", action="store_true",
                        help="refresh the committed certificates.json "
                             "and baseline.json")
    parser.add_argument("--check", action="store_true",
                        help="fail when the committed table is stale "
                             "or a new suspect appeared")
    parser.add_argument("--summaries", action="store_true",
                        help="print per-callable effect summaries")
    args = parser.parse_args(argv)

    if args.check:
        if args.paths:
            parser.error("--check analyses the whole tree; explicit "
                         "paths are not supported")
        return _check(_analyse(args))

    analysis = _analyse(args)
    if args.summaries:
        _print_summaries(analysis)
        return 0
    table = build_table(analysis)
    if args.write:
        DEFAULT_TABLE_PATH.write_text(_dump(table), encoding="utf-8")
        BASELINE_PATH.write_text(_dump(build_baseline(analysis)),
                                 encoding="utf-8")
        print(f"wrote {DEFAULT_TABLE_PATH}")
        print(f"wrote {BASELINE_PATH}")
        return 0
    if args.emit_certs:
        text = _dump(table)
        if args.out:
            pathlib.Path(args.out).write_text(text, encoding="utf-8")
        else:
            sys.stdout.write(text)
        return 0
    _print_summary(analysis, table)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
