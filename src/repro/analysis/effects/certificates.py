"""Commutativity certificates: derivation, table format, runtime gate.

The certificate table is the machine-readable product of the analyzer
(:mod:`repro.analysis.effects.analyzer`): the attributed event-site
patterns with their effect footprints, plus the pairwise verdicts of
:func:`repro.analysis.effects.model.pair_verdict` over every pattern
pair (self-pairs included — two events from the *same* site usually
share state and do **not** commute).

Two certificate tiers back the scheduler gate:

* **batchable** — every label of the cohort is attributed to analyzed,
  kernel-safe model code.  Such a cohort may be batch-fired through the
  calendar queue's cohort walk even when the runtime signature gate
  would sequence it: the firing *order* is still the deterministic one,
  only the per-event re-peek bookkeeping is skipped, so batchability is
  a pure attribution property.  This is the tier that widens runtime
  coverage.
* **commutative** — additionally, every pair of matched patterns (self
  pairs of duplicated labels included) has a ``commutes`` verdict:
  provably disjoint footprints, so even *reordering* the cohort cannot
  change any observable trace.  This is the tier the soundness property
  tests exercise by firing cohorts in both orders.

Verdicts use union semantics over multi-matches: a label matching
several patterns carries the union of their footprints, so a pair of
labels is commutative only if **all** combinations of their matched
patterns commute.

The committed table (``certificates.json`` next to this module) is
regenerated with ``python -m repro.analysis.effects --emit-certs`` and
checked for staleness by ``--check`` in CI; ``baseline.json`` holds the
acknowledged suspect inventory (kernel-unsafe callables, opaque or
unresolved sites) the check regresses against.
"""

from __future__ import annotations

import json
import pathlib
import typing

from repro.analysis.effects.model import (
    COMMUTES,
    CONFLICTS,
    SERIALIZED,
    EffectSummary,
    compile_pattern,
    pair_verdict,
)

if typing.TYPE_CHECKING:
    from repro.analysis.effects.analyzer import ProgramAnalysis

TABLE_VERSION = 1

#: The committed artifacts live next to this module so that the
#: runtime gate can load them without knowing the repository root.
DEFAULT_TABLE_PATH = pathlib.Path(__file__).with_name(
    "certificates.json")
BASELINE_PATH = pathlib.Path(__file__).with_name("baseline.json")


class CertificateError(RuntimeError):
    """A statically certified cohort was observed conflicting.

    Raised by the runtime cross-check (``REPRO_SCHED_CERTS=check``)
    when two members of a batch-fired cohort touch the same kernel
    object during the batch — the structured analogue of a
    :mod:`repro.verify` invariant failure.
    """

    def __init__(self, signature: str, when: float, owner: str,
                 members: typing.Sequence[str]) -> None:
        self.signature = signature
        self.when = when
        self.owner = owner
        self.members = tuple(members)
        super().__init__(
            f"certified cohort {signature!r} at t={when!r} observed "
            f"conflicting: {owner} touched by "
            f"{' and '.join(self.members)}")


def build_table(analysis: "ProgramAnalysis") -> dict[str, typing.Any]:
    """Derive the certificate table from a program analysis.

    Deterministic: patterns are sorted, pair lists are index pairs
    ``i <= j`` in pattern order, every set is emitted sorted — so the
    committed JSON is reproducible byte-for-byte and ``--check`` can
    compare by equality.
    """
    patterns = sorted(analysis.sites)
    closure_safe = analysis.sites_kernel_safe
    entries: list[dict[str, typing.Any]] = []
    summaries: list[EffectSummary] = []
    for pattern in patterns:
        site = analysis.sites[pattern]
        summary = analysis.site_summaries[pattern]
        summaries.append(summary)
        # An unresolved site's generators could not be traced; its
        # batch eligibility then rests on the closed-world invariant
        # that no site-reachable callable in the analyzed packages is
        # kernel-unsafe.
        kernel_safe = summary.kernel_safe and (site.resolved
                                               or closure_safe)
        entries.append({
            "pattern": pattern,
            "origin": site.origin,
            "callables": sorted(site.callables),
            "resolved": site.resolved,
            "kernel_safe": kernel_safe,
            "effects": summary.to_json(),
        })
    commutes: list[list[int]] = []
    serialized: list[list[int]] = []
    for i, left in enumerate(summaries):
        for j in range(i, len(summaries)):
            verdict = pair_verdict(left, summaries[j])
            if verdict == COMMUTES:
                commutes.append([i, j])
            elif verdict == SERIALIZED:
                serialized.append([i, j])
    return {
        "version": TABLE_VERSION,
        "generator": "repro.analysis.effects",
        "kernel_safe_closure": closure_safe,
        "patterns": entries,
        "pairs": {"commutes": commutes, "serialized": serialized},
        "stats": {
            "patterns": len(patterns),
            "kernel_safe_patterns": sum(
                1 for e in entries if e["kernel_safe"]),
            "opaque_patterns": sum(
                1 for s in summaries if s.opaque),
            "commuting_pairs": len(commutes),
            "serialized_pairs": len(serialized),
            "conflicting_pairs": (
                len(summaries) * (len(summaries) + 1) // 2
                - len(commutes) - len(serialized)),
        },
    }


def build_baseline(analysis: "ProgramAnalysis"
                   ) -> dict[str, typing.Any]:
    """The acknowledged suspect inventory ``--check`` regresses
    against."""
    return {
        "version": TABLE_VERSION,
        "suspects": analysis.suspects(),
    }


class CertificateTable:
    """Compiled form of the table, as loaded by the scheduler gate.

    Label-to-pattern matching is memoised per normalised label (the
    auditor's label universe is small and highly repetitive), so the
    per-cohort classification cost after warm-up is set lookups only.
    """

    __slots__ = ("source", "patterns", "_kernel_safe", "_opaque",
                 "_regexes", "_commutes", "_serialized", "_memo")

    def __init__(self, data: dict[str, typing.Any],
                 source: str = "<memory>") -> None:
        version = data.get("version")
        if version != TABLE_VERSION:
            raise ValueError(
                f"certificate table {source}: version {version!r} "
                f"unsupported (expected {TABLE_VERSION})")
        entries = data.get("patterns", [])
        self.source = source
        self.patterns = tuple(e["pattern"] for e in entries)
        self._kernel_safe = tuple(bool(e.get("kernel_safe"))
                                  for e in entries)
        self._opaque = tuple(
            bool(e.get("effects", {}).get("opaque", True))
            for e in entries)
        self._regexes = tuple(compile_pattern(p)
                              for p in self.patterns)
        pairs = data.get("pairs", {})
        self._commutes = frozenset(
            (min(i, j), max(i, j)) for i, j in pairs.get("commutes", ()))
        self._serialized = frozenset(
            (min(i, j), max(i, j))
            for i, j in pairs.get("serialized", ()))
        self._memo: dict[str, tuple[int, ...]] = {}

    def __len__(self) -> int:
        return len(self.patterns)

    def match(self, label: str) -> tuple[int, ...]:
        """Indices of the patterns matching a normalised label."""
        found = self._memo.get(label)
        if found is None:
            found = tuple(i for i, regex in enumerate(self._regexes)
                          if regex.match(label))
            self._memo[label] = found
        return found

    def classify(self, labels: typing.Sequence[str]
                 ) -> tuple[bool, bool]:
        """``(batchable, commutative)`` for a cohort's labels.

        ``labels`` is the cohort's label multiset (duplicates
        included); the auditor's signature split on its separator is
        exactly that.
        """
        matches = []
        for label in labels:
            found = self.match(label)
            if not found:
                return (False, False)
            if not all(self._kernel_safe[i] for i in found):
                return (False, False)
            matches.append(found)
        for found in matches:
            if any(self._opaque[i] for i in found):
                return (True, False)
        for x in range(len(labels)):
            for y in range(x + 1, len(labels)):
                for i in matches[x]:
                    for j in matches[y]:
                        key = (i, j) if i <= j else (j, i)
                        if key not in self._commutes:
                            return (True, False)
        return (True, True)

    def batchable(self, labels: typing.Sequence[str]) -> bool:
        return self.classify(labels)[0]

    def commutative(self, labels: typing.Sequence[str]) -> bool:
        return self.classify(labels)[1]

    def verdict(self, label_a: str, label_b: str) -> str:
        """Pairwise verdict between two labels (union semantics)."""
        a, b = self.match(label_a), self.match(label_b)
        if not a or not b:
            return CONFLICTS
        worst = COMMUTES
        for i in a:
            for j in b:
                key = (i, j) if i <= j else (j, i)
                if key in self._commutes:
                    continue
                if key in self._serialized:
                    worst = SERIALIZED
                else:
                    return CONFLICTS
        return worst


def load_table(path: pathlib.Path | str | None = None
               ) -> CertificateTable:
    """Load a certificate table (the committed default when ``path``
    is None)."""
    table_path = pathlib.Path(path) if path else DEFAULT_TABLE_PATH
    try:
        data = json.loads(table_path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise FileNotFoundError(
            f"certificate table not found at {table_path}; run "
            f"'python -m repro.analysis.effects --emit-certs --write' "
            f"to generate it") from None
    return CertificateTable(data, source=str(table_path))
