"""``python -m repro.analysis.lint`` — the simulation-purity linter CLI.

.. code-block:: console

    $ python -m repro.analysis.lint src/repro        # lint the tree
    $ python -m repro.analysis.lint --list-rules     # rule catalog
    $ python -m repro.analysis.lint --no-config file.py

Exit status: 0 clean, 1 findings reported, 2 usage error.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import typing

from repro.analysis.config import LintConfig, load_lint_config
from repro.analysis.linter import (
    iter_python_files,
    lint_paths,
    stale_suppressions,
    strip_stale_suppressions,
)
from repro.analysis.rules import RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="AST linter enforcing the simulator's determinism "
                    "invariants (DESIGN.md §8).")
    parser.add_argument(
        "paths", nargs="*", type=pathlib.Path,
        help="files or directories to lint (default: src/repro if it "
             "exists, else the current directory)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore pyproject.toml and lint with built-in defaults")
    parser.add_argument(
        "--select", metavar="CODES", default=None,
        help="comma-separated rule codes to run (default: all enabled)")
    parser.add_argument(
        "--fix-stale", action="store_true",
        help="rewrite files in place, stripping suppressions whose "
             "rule ran but no longer fires")
    return parser


def _default_paths() -> list[pathlib.Path]:
    src = pathlib.Path("src/repro")
    return [src if src.is_dir() else pathlib.Path(".")]


def main(argv: typing.Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in RULES:
            scope = "sim packages only" if rule.sim_only else "all code"
            print(f"{rule.code}  {rule.name:<24} [{scope}]")
            print(f"         {rule.summary}")
        return 0
    paths: list[pathlib.Path] = args.paths or _default_paths()
    for path in paths:
        if not path.exists():
            parser.error(f"no such file or directory: {path}")
    if args.no_config:
        config = LintConfig()
    else:
        config = load_lint_config(paths[0].resolve())
    rules = list(RULES)
    if args.select:
        wanted = {code.strip().upper()
                  for code in args.select.split(",") if code.strip()}
        known = {rule.code for rule in RULES}
        unknown = wanted - known
        if unknown:
            parser.error(
                f"unknown rule code(s): {', '.join(sorted(unknown))}")
        rules = [rule for rule in RULES if rule.code in wanted]
    if args.fix_stale:
        fixed = 0
        for path in iter_python_files(paths):
            source = path.read_text(encoding="utf-8")
            stale = stale_suppressions(source, path, config, rules)
            if not stale:
                continue
            path.write_text(strip_stale_suppressions(source, stale),
                            encoding="utf-8")
            fixed += len(stale)
            print(f"{path.as_posix()}: stripped {len(stale)} stale "
                  f"suppression(s)")
        print(f"{fixed} stale suppression(s) stripped", file=sys.stderr)
    findings = lint_paths(paths, config, rules)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
