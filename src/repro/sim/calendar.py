"""Calendar-queue future-event list (``REPRO_SCHED=calendar``).

The classic scheduler keys a binary heap by ``(time, priority,
sequence)`` and pays O(log n) per push/pop plus a 4-tuple allocation
per entry.  This module replaces it with a bucketed future-event list
in the calendar-queue family (Brown 1988): events scheduled for the
same instant live in one *cohort bucket*, and only **distinct** times
are ordered.

Layout
------
* ``normal`` / ``urgent`` — ``dict[float, entry]`` mapping an exact
  timestamp to its cohort.  A singleton cohort — the overwhelmingly
  common case in the paper's workloads — is stored as the bare
  :class:`Event` (no container at all); a multi-event cohort upgrades
  to a plain list shaped ``[next_index, event, event, ...]`` whose
  slot 0 is the consumption cursor, so partially drained buckets need
  no slicing and exhausted lists are recycled through ``bucket_pool``.
  Either way entries are tuple-free — no ``(time, priority, sequence,
  event)`` allocation per schedule.
* a **time index** ordering the distinct pending timestamps.  Below
  ``engage_threshold`` distinct times this is a plain float min-heap
  (``times``) — at the paper's scales the queue holds a few dozen
  distinct times, where a native-compare float heap beats any
  multi-level scheme.  Past the threshold the index *engages* a
  **day index**: timestamps map to integer days of ``width`` seconds
  (``days``/``day_heap``), and only the day currently being drained
  keeps a sorted timestamp list (``cd_*``).  An insert into the
  current day is a ``bisect.insort`` past the cursor; an insert into a
  future day is an O(1) append.  The index *disengages* back to the
  flat heap when the pending population falls below a quarter of the
  threshold (hysteresis).

Width policy and resize
-----------------------
On engagement the width is chosen so a day holds ``target_per_day``
distinct times on average: ``width = span / (n_times /
target_per_day)``.  Two heuristics adapt it mid-run (a *resize*
rebuckets every pending timestamp under the new width):

* a day collecting ``day_limit`` distinct times **halves** the width
  (guarded by a 1e-9 floor against inseparable clusters);
* 64 consecutive single-timestamp days **double** it.

``REPRO_SCHED_WIDTH`` (or the ``width=`` argument) forces a fixed
width: the day index engages immediately and all automatic policy is
disabled — that is how the edge-case tests pin "everything in one
bucket" and "one event per bucket".

Order equivalence
-----------------
The heap fires ties in ``sequence`` order — insertion order within one
``(time, priority)`` key.  Here an insert *appends* to its cohort
bucket, and every kernel insert happens at exactly the moment the heap
path would have allocated its sequence number (grant-and-hold re-keys
included — their urgent first leg is retained precisely so the re-key
moment is unchanged).  Bucket order therefore equals sequence order
entry for entry, urgent buckets drain before normal buckets at the
same instant, and distinct times come out of the index sorted: the pop
sequence is bit-identical to the heap's.  The property suite
(``tests/sim/test_calendar.py``) drives both schedulers through
randomized dense-tie workloads to hold this to the letter.
"""

from __future__ import annotations

import heapq
import typing
from bisect import insort

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.events import Event

#: Distinct pending times at which the flat heap hands over to the day
#: index.  Figure-5 workloads peak around 40; the threshold only trips
#: on the scale-out sweeps the calendar exists for.
DEFAULT_ENGAGE_THRESHOLD = 4096
#: Mean distinct times per day the engagement width aims for.
DEFAULT_TARGET_PER_DAY = 16
#: Distinct times in one day that trigger a width halving.
DEFAULT_DAY_LIMIT = 512
#: Consecutive single-time days that trigger a width doubling.
_SPARSE_RUN = 64
#: Recycled cohort lists kept around (covers the steady-state working
#: set; beyond this the allocator is not the bottleneck).
_BUCKET_POOL_CAP = 64

_URGENT = 0
_NORMAL = 1


class CalendarQueue:
    """Bucketed future-event list with exact-timestamp cohorts.

    Only the two kernel priorities are supported: ``PRIORITY_URGENT``
    (0) and ``PRIORITY_NORMAL`` (1).  The event loop reaches into the
    ``normal``/``times``/``bucket_pool`` slots directly on its hot
    path — they are kernel API, not private state.
    """

    __slots__ = ("normal", "urgent", "times", "bucket_pool",
                 "day_mode", "auto", "width", "inv_width",
                 "days", "day_heap", "cd_day", "cd_times", "cd_idx",
                 "n_times", "n_events", "engage_threshold",
                 "target_per_day", "day_limit", "engages", "resizes",
                 "_sparse_days")

    def __init__(self, width: float | None = None,
                 engage_threshold: int = DEFAULT_ENGAGE_THRESHOLD,
                 target_per_day: int = DEFAULT_TARGET_PER_DAY,
                 day_limit: int = DEFAULT_DAY_LIMIT) -> None:
        # Entry is a bare Event (singleton cohort) or a cursor list
        # ``[next_index, event, ...]`` — see the module docstring.
        self.normal: dict[float, typing.Any] = {}
        self.urgent: dict[float, typing.Any] = {}
        self.times: list[float] = []
        self.bucket_pool: list[list] = []
        self.days: dict[int, list[float]] = {}
        self.day_heap: list[int] = []
        self.cd_day = -1
        self.cd_times: list[float] = []
        self.cd_idx = 0
        self.n_times = 0
        #: O(1) pending-event count.  ``Simulator._schedule`` reads it
        #: on *every* schedule (for the ``heap_peak`` diagnostic), so
        #: it cannot be a bucket scan; the engine's inlined run loop
        #: adjusts it directly at the sites that bypass
        #: :meth:`insert`/:meth:`pop`.  While a cohort bucket is being
        #: walked by the run loop its remaining events are already
        #: excluded — same as the heap, whose popped entry is out of
        #: ``len(heap)`` before it fires.
        self.n_events = 0
        self.engage_threshold = engage_threshold
        self.target_per_day = target_per_day
        self.day_limit = day_limit
        self.engages = 0
        self.resizes = 0
        self._sparse_days = 0
        #: ``auto`` drives engagement/resize; a forced width pins the
        #: day index on with all policy off (see module docstring).
        self.auto = width is None
        if width is None:
            self.day_mode = False
            self._set_width(1.0)
        else:
            if width <= 0:
                raise ValueError(f"bucket width must be > 0: {width!r}")
            self.day_mode = True
            self._set_width(width)

    def _set_width(self, width: float) -> None:
        self.width = width
        self.inv_width = 1.0 / width

    # -- insertion -------------------------------------------------------

    def insert(self, time: float, priority: int, event: "Event") -> None:
        """Append ``event`` to its ``(time, priority)`` cohort."""
        if priority == _NORMAL:
            buckets = self.normal
            other = self.urgent
        elif priority == _URGENT:
            buckets = self.urgent
            other = self.normal
        else:
            raise ValueError(
                "calendar scheduler supports only the URGENT/NORMAL "
                f"priorities; got {priority!r} (set REPRO_SCHED=heap "
                "for custom priority classes)")
        self.n_events += 1
        entry = buckets.setdefault(time, event)
        if entry is event:
            # Both priority buckets at one timestamp share a single
            # index entry; only the first registers it.
            if not other or time not in other:
                self._index_add(time)
        elif type(entry) is list:
            entry.append(event)
        else:
            # Singleton upgrades to a cursor bucket on first collision.
            pool = self.bucket_pool
            if pool:
                bucket = pool.pop()
                bucket.append(entry)
                bucket.append(event)
            else:
                bucket = [1, entry, event]
            buckets[time] = bucket

    def _index_add(self, time: float) -> None:
        if not self.day_mode:
            # The flat heap holds exactly the pending distinct times,
            # so its length *is* the population count.
            heapq.heappush(self.times, time)
            if self.auto and len(self.times) > self.engage_threshold:
                self._engage_days()
            return
        self.n_times += 1
        day = int(time * self.inv_width)
        if day <= self.cd_day:
            # The current drain day (or, for inserts at the current
            # instant, an already-passed day): keep it in the sorted
            # current-day list, past the cursor.  ``time >= now``
            # guarantees the insertion point is >= cd_idx.
            insort(self.cd_times, time, lo=self.cd_idx)
            return
        days = self.days
        bucket = days.get(day)
        if bucket is None:
            days[day] = [time]
            heapq.heappush(self.day_heap, day)
        else:
            bucket.append(time)
            if (self.auto and len(bucket) >= self.day_limit
                    and self.width > 1e-9):
                self.resizes += 1
                self._rebucket(self.width * 0.5)

    # -- time index ------------------------------------------------------

    def peek_time(self) -> float | None:
        """The earliest pending timestamp (None when empty).

        In day mode this may advance the current-day cursor to the
        next non-empty day (amortized O(1) per distinct time).
        """
        if not self.day_mode:
            times = self.times
            return times[0] if times else None
        if self.cd_idx < len(self.cd_times):
            return self.cd_times[self.cd_idx]
        while self.day_heap:
            day = heapq.heappop(self.day_heap)
            day_times = self.days.pop(day)
            day_times.sort()
            self.cd_day = day
            self.cd_times = day_times
            self.cd_idx = 0
            if self.auto:
                if len(day_times) == 1:
                    self._sparse_days += 1
                    if self._sparse_days >= _SPARSE_RUN:
                        self._sparse_days = 0
                        self.resizes += 1
                        self._rebucket(self.width * 2.0)
                        continue  # rebucket harvested the day; re-scan
                else:
                    self._sparse_days = 0
            return day_times[0]
        return None

    def peek_key(self) -> tuple[float, int] | None:
        """The ``(time, priority)`` key the next :meth:`pop` returns."""
        time = self.peek_time()
        if time is None:
            return None
        if self.urgent and time in self.urgent:
            return (time, _URGENT)
        return (time, _NORMAL)

    def _index_remove_current(self) -> None:
        """Drop the front index entry (its last bucket just died)."""
        if not self.day_mode:
            heapq.heappop(self.times)
            return
        self.n_times -= 1
        self.cd_idx += 1
        if self.auto and self.n_times * 4 < self.engage_threshold:
            self._disengage_days()

    def _pending_times(self) -> list[float]:
        if not self.day_mode:
            return list(self.times)
        pending = self.cd_times[self.cd_idx:]
        for day_times in self.days.values():
            pending.extend(day_times)
        return pending

    def _engage_days(self) -> None:
        times = self.times
        self.n_times = len(times)
        span = max(times) - times[0]
        width = span / max(1.0, self.n_times / self.target_per_day)
        self.engages += 1
        self.day_mode = True
        self.cd_day = -1
        self.cd_times = []
        self.cd_idx = 0
        pending = times[:]
        # Cleared in place: the calendar run loop holds an alias and
        # repairs anything pushed there after a mid-loop engagement.
        del times[:]
        self._build_days(pending, width if width > 0.0 else 1.0)

    def _disengage_days(self) -> None:
        pending = self._pending_times()
        heapq.heapify(pending)
        self.times = pending
        self.n_times = 0
        self.day_mode = False
        self.days = {}
        self.day_heap = []
        self.cd_day = -1
        self.cd_times = []
        self.cd_idx = 0

    def _rebucket(self, width: float) -> None:
        """Redistribute every pending timestamp under a new width."""
        pending = self._pending_times()
        self.cd_day = -1
        self.cd_times = []
        self.cd_idx = 0
        self._build_days(pending, width)

    def _build_days(self, pending: list[float], width: float) -> None:
        # Lazily imported: repro.core pulls in the engine package,
        # which imports repro.sim — a cycle at module-import time.
        # Engage/rebucket passes are rare (a handful per run), so the
        # attribute lookup cost is irrelevant next to the O(pending)
        # partition this hands to the compiled backend.
        import numpy as np

        from repro.core import backend
        self._set_width(width)
        sorted_times, starts, ends, day_ids = backend.partition_days(
            np.asarray(pending, dtype=np.float64), self.inv_width)
        times_list: list[float] = sorted_times.tolist()
        days: dict[int, list[float]] = {}
        for a, b, day in zip(starts.tolist(), ends.tolist(),
                             day_ids.tolist()):
            days[day] = times_list[a:b]
        self.days = days
        # Day ids arrive ascending — already a valid min-heap.  The
        # per-day time lists arrive sorted, which the harvest in
        # :meth:`peek_time` re-sorts (a no-op) — within-day order was
        # never observable.
        self.day_heap = day_ids.tolist()

    # -- removal ---------------------------------------------------------

    def pop(self) -> tuple[float, int, "Event"]:
        """Remove and return the next ``(time, priority, event)``.

        Heap-identical order: earliest time first, urgent before
        normal at one instant, insertion order within a cohort.
        """
        time = self.peek_time()
        if time is None:
            raise IndexError("pop from an empty calendar queue")
        urgent = self.urgent
        if urgent:
            entry = urgent.get(time)
            if entry is not None:
                return (time, _URGENT,
                        self._consume(urgent, time, entry, self.normal))
        entry = self.normal[time]
        return (time, _NORMAL,
                self._consume(self.normal, time, entry, urgent))

    def _consume(self, buckets: dict, time: float, entry: typing.Any,
                 other: dict) -> "Event":
        self.n_events -= 1
        if type(entry) is not list:
            del buckets[time]
            if not other or time not in other:
                self._index_remove_current()
            return entry
        index = entry[0]
        event = entry[index]
        index += 1
        if index == len(entry):
            del buckets[time]
            if not other or time not in other:
                self._index_remove_current()
            self._recycle(entry)
        else:
            entry[0] = index
        return event

    def _recycle(self, bucket: list) -> None:
        pool = self.bucket_pool
        if len(pool) < _BUCKET_POOL_CAP:
            del bucket[1:]
            bucket[0] = 1
            pool.append(bucket)

    # -- introspection ---------------------------------------------------

    def pending_events(self) -> int:
        """Events waiting to fire (diagnostics; O(distinct times))."""
        total = 0
        for entry in self.normal.values():
            total += (len(entry) - entry[0]) if type(entry) is list else 1
        for entry in self.urgent.values():
            total += (len(entry) - entry[0]) if type(entry) is list else 1
        return total

    def __bool__(self) -> bool:
        return bool(self.normal or self.urgent)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = (f"days w={self.width:g}" if self.day_mode else "flat")
        n = self.n_times if self.day_mode else len(self.times)
        return (f"<CalendarQueue {mode} times={n} "
                f"events={self.pending_events()}>")
