"""Waitable event primitives for the simulation kernel.

An :class:`Event` is the unit of synchronisation: processes ``yield``
events and are resumed when the event *fires*.  Events fire at a
specific simulated time, carry an optional value, and invoke their
callbacks in registration order.

The lifecycle is strictly one-way::

    pending --succeed()/fail()--> triggered --(heap pop)--> fired

``succeed`` may be called at most once; firing an event twice is a
programming error and raises :class:`RuntimeError`.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator

# Events scheduled at the same time fire in priority order, then in the
# order they were scheduled.  URGENT is used by the kernel for resource
# grants so that a released resource is re-granted before ordinary
# timeouts at the same instant.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    sim:
        The owning simulator.  Events are bound to exactly one simulator
        and may only be waited on by processes of that simulator.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered",
                 "_fired", "_hold", "_serial", "_pool")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        # Stable per-engine creation serial: event counts are
        # deterministic, so serials reproduce across runs — unlike
        # id(), which is allocator-dependent (REPRO003).
        sim._event_serial = self._serial = sim._event_serial + 1
        self.callbacks: list[typing.Callable[[Event], None]] = []
        self._value: typing.Any = None
        self._ok = True
        self._triggered = False
        self._fired = False
        # Kernel fast path (see Simulator.run): when set, the first
        # heap pop re-keys this event ``_hold`` seconds later instead
        # of firing it — the grant-and-hold lane of Resource.use.
        self._hold: float | None = None
        # Slab-pool flag (see DESIGN.md §11): True only for the
        # kernel-owned events minted by Resource.use (grant-and-hold)
        # and Store.get, which the calendar run loop recycles through
        # Simulator._event_pool after their callbacks have run.
        self._pool = False

    # -- state inspection -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def fired(self) -> bool:
        """True once callbacks have run."""
        return self._fired

    @property
    def ok(self) -> bool:
        """False when the event carries an exception (see :meth:`fail`)."""
        return self._ok

    @property
    def value(self) -> typing.Any:
        """The value the event fired with (or the carried exception)."""
        return self._value

    # -- triggering --------------------------------------------------------

    def succeed(self, value: typing.Any = None, delay: float = 0.0,
                priority: int = PRIORITY_NORMAL) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule(self, delay, priority)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0,
             priority: int = PRIORITY_NORMAL) -> "Event":
        """Schedule this event to fire carrying ``exception``.

        A process waiting on a failed event has the exception thrown
        into its generator at the ``yield`` statement.
        """
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay, priority)
        return self

    # -- kernel hooks --------------------------------------------------------

    def _fire(self) -> None:
        """Run callbacks.  Called exactly once by the event loop."""
        self._fired = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self._fired else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} #{self._serial} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float,
                 value: typing.Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self.succeed(value, delay=delay)


class _Condition(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator",
                 events: typing.Sequence[Event]) -> None:
        super().__init__(sim)
        self.events = tuple(events)
        for event in self.events:
            if event.sim is not sim:
                raise ValueError("all events must belong to one simulator")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            if event.fired:
                self._observe(event)
            else:
                event.callbacks.append(self._observe)

    def _observe(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every constituent event has fired.

    The value is the list of constituent values in constructor order.
    If any constituent fails, the condition fails with that exception
    (first failure wins).
    """

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e.value for e in self.events])


class AnyOf(_Condition):
    """Fires as soon as any constituent event fires.

    The value is the (event, value) pair of the first event to fire.
    """

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self.succeed((event, event.value))
