"""Discrete-event simulation kernel.

This package is the timing substrate for the whole reproduction: a
deterministic, generator-based discrete-event simulator in the style of
SimPy, small enough to audit and with no third-party dependencies.

The kernel provides:

* :class:`~repro.sim.engine.Simulator` — the event loop and clock.
* :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.AllOf`, :class:`~repro.sim.events.AnyOf` —
  the waitable primitives.
* :class:`~repro.sim.process.Process` — a lightweight process wrapping a
  Python generator that ``yield``\\ s events.
* :class:`~repro.sim.resources.Resource` — a FIFO-queued, fixed-capacity
  resource (used for CPUs, disks, and the token ring).
* :class:`~repro.sim.resources.Store` — an unbounded FIFO message queue
  (used for operator mailboxes).

Determinism: given the same inputs the simulation produces bit-identical
event orders and final times.  Ties in time are broken first by event
priority, then by scheduling order.
"""

from repro.sim.engine import Simulator
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessCrash
from repro.sim.resources import Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Process",
    "ProcessCrash",
    "Resource",
    "Simulator",
    "Store",
    "Timeout",
]
