"""The simulation event loop.

:class:`Simulator` owns the clock and the event heap.  Model code never
touches the heap directly; it creates :class:`~repro.sim.events.Event`
objects (or the convenience wrappers below) and lets processes wait on
them.

The loop is deterministic: the heap is keyed by
``(time, priority, sequence)`` where ``sequence`` is a monotonically
increasing counter, so same-time events fire in scheduling order within
a priority class.

Fast paths
----------
Two kernel optimisations shrink the constant factor without changing a
single simulated timestamp (see DESIGN.md, "Kernel fast paths"):

* **grant-and-hold events** — :meth:`repro.sim.resources.Resource.use`
  marks its grant event with a hold duration; the run loop re-keys such
  an event ``hold`` seconds into the future on its first pop instead of
  firing it.  The sequence number for the re-keyed entry is allocated
  at exactly the moment the classic request→grant→timeout chain would
  have allocated the timeout's, so heap ordering — and therefore every
  simulated time — is bit-identical, while one full generator resume
  per resource use is skipped.
* **an urgent FIFO lane** — every URGENT schedule in the kernel is
  delay-0 (resource grants, grant-and-hold first legs, store puts), so
  such events are appended to a plain deque instead of the heap.  All
  ``(now, URGENT)`` entries sort before everything else in the heap and
  tie-break by scheduling order, which is exactly FIFO — so popping the
  deque first reproduces heap order while replacing two O(log n) heap
  operations per grant with O(1) deque operations.  ``_schedule``
  rejects an URGENT schedule with a non-zero delay to keep the
  invariant honest.
* **an inlined run loop** — :meth:`run` performs the pop/fire cycle
  with hoisted locals instead of delegating to :meth:`step`.

Set ``REPRO_FASTPATH=0`` to disable the grant-and-hold lane (the run
loop then never sees a held event); the golden parity tests exercise
both modes.

Scheduler selection (``REPRO_SCHED``)
-------------------------------------
``REPRO_SCHED=calendar`` (the default) replaces the binary heap with
the calendar queue of :mod:`repro.sim.calendar`: same-timestamp events
share one cohort bucket, only distinct times are ordered, and the run
loop fires whole cohorts off a single dequeue.  Two further layers ride
on it (see DESIGN.md §11):

* **cohort firing** — a multi-event cohort is fired straight off its
  bucket when the tie auditor's site classification
  (:mod:`repro.analysis.audit`) calls its signature benign; suspect
  signatures take a sequenced per-event path that re-consults the full
  queue between fires, exactly like :meth:`step`.  Both orders are the
  heap's order; the gate only decides how defensively it is replayed.
  ``REPRO_SCHED_COHORT=0`` forces the sequenced path everywhere.
* **slab-allocated events** — grant-and-hold events (the large
  majority of all fired events) are recycled through a per-simulator
  free list instead of being reallocated, and their callback lists are
  cleared in place rather than swapped.

``REPRO_SCHED=heap`` restores the classic scheduler unchanged.  Either
way every simulated timestamp is bit-identical — enforced by the
golden parity suite and the ``repro.verify.matrix`` mode cube.
"""

from __future__ import annotations

import collections
import gc
import heapq
import os
import typing

from repro.sim.calendar import CalendarQueue
from repro.sim.events import (
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    AllOf,
    AnyOf,
    Event,
    Timeout,
)
from repro.sim.process import Process

#: Recycled grant-and-hold events kept per simulator (slab pool).
#: Covers the steady-state in-flight population at every paper scale;
#: the cap only bounds pathological fan-out.
_EVENT_POOL_CAP = 512

#: Sentinel "no active cohort bucket" for the calendar drains: keeps
#: the hot-loop local non-Optional (mypy strict) with the same
#: identity test the Optional form would use.  Never mutated.
_NO_BUCKET: list = []


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Simulator:
    """A deterministic discrete-event simulator.

    Examples
    --------
    >>> sim = Simulator()
    >>> log = []
    >>> def worker(name, delay):
    ...     yield sim.timeout(delay)
    ...     log.append((sim.now, name))
    >>> _ = sim.process(worker("b", 2.0))
    >>> _ = sim.process(worker("a", 1.0))
    >>> sim.run()
    >>> log
    [(1.0, 'a'), (2.0, 'b')]
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        #: FIFO lane for delay-0 URGENT events (see module docstring).
        #: Always drained before the heap; empty when fastpath is off.
        self._urgent: collections.deque[Event] = collections.deque()
        self._sequence = 0
        #: Event-creation serial counter (stable debug identity;
        #: see Event.__repr__).
        self._event_serial = 0
        self._active_processes = 0
        self._crashed: list[Process] = []
        #: Grant-and-hold lane switch (see module docstring).
        self.fastpath: bool = os.environ.get("REPRO_FASTPATH", "1") != "0"
        #: Scheduler selection (see module docstring): ``calendar``
        #: (default) or ``heap``.
        sched = os.environ.get("REPRO_SCHED", "calendar").strip().lower()
        if sched not in ("calendar", "heap"):
            raise ValueError(
                f"REPRO_SCHED must be 'calendar' or 'heap', got {sched!r}")
        self.sched: str = sched
        if sched == "calendar":
            width = os.environ.get("REPRO_SCHED_WIDTH", "").strip()
            self._calendar: CalendarQueue | None = CalendarQueue(
                width=float(width) if width else None)
        else:
            self._calendar = None
        #: Slab pool of fired grant-and-hold events awaiting reuse
        #: (filled by the calendar run loop, drained by Resource.use).
        self._event_pool: list[Event] = []
        #: Cohort-firing gate; ``REPRO_SCHED_COHORT=0`` forces the
        #: sequenced path at every multi-event cohort.
        self._cohort_fire: bool = (
            os.environ.get("REPRO_SCHED_COHORT", "1") != "0")
        #: Lazily bound signature classifier (repro.analysis.audit,
        #: plus the static certificate table when REPRO_SCHED_CERTS is
        #: set — see DESIGN.md §12) and its per-signature verdict
        #: cache.  Verdicts: 0 sequence, 1 batch, 2 batch+cross-check.
        self._cohort_benign_fn: typing.Callable[[list, int, int],
                                                int] | None = None
        self._cohort_cache: dict[str, int] = {}
        #: Event-tie auditor (``REPRO_AUDIT=1``, see DESIGN.md §8 and
        #: repro.analysis.audit).  Observes same-(time, priority) heap
        #: pops; never changes pop order.  Lazily imported so the
        #: analysis package costs nothing when auditing is off.
        audit = os.environ.get("REPRO_AUDIT", "")
        if audit and audit != "0":
            from repro.analysis.audit import TieAuditor
            self.auditor: TieAuditor | None = TieAuditor.from_env()
        else:
            self.auditor = None
        #: Conformance mode (``REPRO_VERIFY=1``): route run() through
        #: the step()-based loop, whose per-pop clock guard catches any
        #: event firing before the current simulated time.
        from repro.verify import verify_enabled
        self.verify: bool = verify_enabled()
        # -- diagnostics counters (satellite: kernel observability) ----
        #: Events whose callbacks have run.
        self.events_fired = 0
        #: Grant-and-hold re-keys taken instead of full grant+timeout
        #: event pairs (fast-path hits).
        self.fastpath_holds = 0
        #: High-water mark of the event queue (heap or calendar).
        self.heap_peak = 0
        #: Multi-event cohorts dequeued by the calendar run loop, and
        #: the events they contained.
        self.sched_cohorts = 0
        self.sched_cohort_events = 0
        #: Cohorts routed through the sequenced (per-event) path —
        #: suspect signatures plus everything under REPRO_SCHED_COHORT=0.
        self.sched_sequenced_cohorts = 0
        #: Events parked on the slab pool for reuse.
        self.sched_pool_recycles = 0
        #: Cohorts batch-fired only because the static certificate
        #: table vouched for them (``REPRO_SCHED_CERTS``, DESIGN.md
        #: §12) — the runtime signature gate alone would have
        #: sequenced them.
        self.sched_cert_upgrades = 0
        #: Certified-commutative cohorts fired through the
        #: cross-checked path (``REPRO_SCHED_CERTS=check``).
        self.sched_cert_checked = 0

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: typing.Any = None) -> Timeout:
        """An event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """An event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """An event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    def process(self, generator: typing.Generator,
                name: str | None = None) -> Process:
        """Start a new process executing ``generator`` immediately.

        The process body runs at the current simulated time as soon as
        the loop regains control; its first ``yield`` suspends it.
        """
        return Process(self, generator, name=name)

    # -- kernel interface ----------------------------------------------------

    def _schedule(self, event: Event, delay: float,
                  priority: int = PRIORITY_NORMAL) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past: {delay!r}")
        if priority == PRIORITY_URGENT and self.fastpath:
            # Urgent FIFO lane: (now, URGENT) entries pop before
            # anything else in the heap and tie-break in scheduling
            # order, so a deque reproduces heap order exactly.  The
            # deque skips sequence allocation; relative order of the
            # remaining heap entries' sequence numbers — the only thing
            # the counter decides — is unchanged by the gaps.
            if delay != 0.0:
                raise ValueError(
                    "URGENT events must be delay-0 (urgent-lane "
                    f"invariant); got delay={delay!r}")
            urgent = self._urgent
            urgent.append(event)
            pending = self.queued_events
        else:
            calendar = self._calendar
            if calendar is not None:
                # Appending to the (time, priority) cohort bucket here
                # — at the exact moment the heap path would allocate
                # its sequence number — is what keeps bucket order
                # identical to sequence order (see repro.sim.calendar).
                calendar.insert(self.now + delay, priority, event)
            else:
                self._sequence += 1
                heapq.heappush(
                    self._heap,
                    (self.now + delay, priority, self._sequence, event))
            pending = self.queued_events
        if pending > self.heap_peak:
            self.heap_peak = pending

    def kernel_counters(self) -> dict:
        """Diagnostics snapshot for the experiment harness."""
        counters = {
            "events_fired": self.events_fired,
            "fastpath_holds": self.fastpath_holds,
            "heap_peak": self.heap_peak,
            "queued_events": self.queued_events,
            "sched_mode": self.sched,
            "sched_cohorts": self.sched_cohorts,
            "sched_cohort_events": self.sched_cohort_events,
            "sched_sequenced_cohorts": self.sched_sequenced_cohorts,
            "sched_event_pool_reuses": self.sched_pool_recycles,
            "sched_cert_upgrades": self.sched_cert_upgrades,
            "sched_cert_checked": self.sched_cert_checked,
        }
        calendar = self._calendar
        if calendar is not None:
            counters["sched_calendar_engages"] = calendar.engages
            counters["sched_calendar_resizes"] = calendar.resizes
            counters["sched_day_index"] = int(calendar.day_mode)
        if self.auditor is not None:
            counters.update(self.auditor.counters())
        return counters

    def audit_report(self) -> str:
        """The event-tie auditor's text summary (``REPRO_AUDIT=1``)."""
        if self.auditor is None:
            return "event-tie audit disabled (set REPRO_AUDIT=1)"
        return self.auditor.summary()

    # -- running -------------------------------------------------------------

    def step(self) -> None:
        """Fire the single next event.

        Held (grant-and-hold) heap entries encountered on the way are
        re-keyed transparently; one call always fires exactly one
        event.
        """
        heap = self._heap
        urgent = self._urgent
        calendar = self._calendar
        while True:
            if urgent:
                event = urgent.popleft()
                from_heap = False
                priority = PRIORITY_URGENT
            elif calendar is not None:
                try:
                    when, priority, event = calendar.pop()
                except IndexError:
                    raise SimulationError("nothing scheduled") from None
                if when < self.now:  # pragma: no cover - _schedule guards
                    raise SimulationError("time moved backwards")
                self.now = when
                from_heap = True
            elif heap:
                when, priority, _seq, event = heapq.heappop(heap)
                if when < self.now:  # pragma: no cover - _schedule guards
                    raise SimulationError("time moved backwards")
                self.now = when
                from_heap = True
            else:
                raise SimulationError("nothing scheduled")
            hold = event._hold
            if hold is not None:
                event._hold = None
                if calendar is not None:
                    calendar.insert(self.now + hold, PRIORITY_NORMAL,
                                    event)
                else:
                    self._sequence += 1
                    heapq.heappush(heap, (self.now + hold, PRIORITY_NORMAL,
                                          self._sequence, event))
                self.fastpath_holds += 1
                continue
            # Urgent-lane pops are excluded by design: that lane is
            # semantically FIFO, so its insertion order *is* its
            # specified order, not an arbitrary tie-break.  The tie
            # flag is *coexistence*: the next queue entry shares this
            # key right now, before this event fires — an entry this
            # fire schedules at the same instant is causally ordered,
            # not tied.  (For the calendar that is exactly "the popped
            # cohort bucket still holds events".)
            if from_heap and self.auditor is not None:
                if calendar is not None:
                    tied = calendar.peek_key() == (self.now, priority)
                else:
                    tied = (bool(heap) and heap[0][0] == self.now
                            and heap[0][1] == priority)
                self.auditor.record(self.now, priority, event, tied)
            event._fire()
            self.events_fired += 1
            if self._crashed:
                process = self._crashed[0]
                raise process.crash_error
            return

    def run(self, until: float | None = None) -> None:
        """Run until the heap drains (or the clock passes ``until``).

        Raises
        ------
        ProcessCrash
            If any process terminates with an unhandled exception the
            error propagates out of ``run`` immediately (fail fast).
        """
        if self.auditor is not None or self.verify:
            # The audited/verified path pays for observability with the
            # plain step() loop; simulated times are identical either
            # way (the auditor only watches pops, it never reorders
            # them, and step() checks the clock never moves backwards).
            self._run_audited(until)
            return
        if self._calendar is not None:
            self._run_calendar(until)
            return
        # Inlined pop/fire cycle — semantically identical to calling
        # step() in a loop, with the hot locals hoisted and the
        # bounded-run (``until``) check compiled out of the common
        # run-to-completion case.
        #
        # Cyclic GC is deferred for the duration of the loop: the
        # kernel allocates millions of short-lived events and frames,
        # all of which die by reference counting — generational scans
        # find nothing to free (measured: zero cyclic garbage after a
        # full sweep) while costing ~10 % of the wall clock.
        heap = self._heap
        urgent = self._urgent
        urgent_popleft = urgent.popleft
        heappop = heapq.heappop
        heappush = heapq.heappush
        crashed = self._crashed
        events_fired = 0
        holds = 0
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while until is not None and (urgent or heap):
                # Urgent-lane events fire at the current instant, which
                # is <= until by construction; only a heap pop can
                # advance the clock past the bound.
                if urgent:
                    event = urgent_popleft()
                    # Grant-and-hold events only ever travel the urgent
                    # lane (use() appends there; the re-key below clears
                    # _hold before the heap push), so heap pops skip
                    # the hold check.
                    hold = event._hold
                    if hold is not None:
                        event._hold = None
                        self._sequence += 1
                        heappush(heap, (self.now + hold, PRIORITY_NORMAL,
                                        self._sequence, event))
                        holds += 1
                        continue
                else:
                    if heap[0][0] > until:
                        self.now = until
                        return
                    when, _priority, _seq, event = heappop(heap)
                    self.now = when
                event._fired = True
                callbacks = event.callbacks
                if callbacks:
                    event.callbacks = []
                    for callback in callbacks:
                        callback(event)
                events_fired += 1
                if crashed:
                    raise crashed[0].crash_error
            while True:
                if urgent:
                    event = urgent_popleft()
                    hold = event._hold
                    if hold is not None:
                        event._hold = None
                        self._sequence += 1
                        heappush(heap, (self.now + hold, PRIORITY_NORMAL,
                                        self._sequence, event))
                        holds += 1
                        continue
                elif heap:
                    when, _priority, _seq, event = heappop(heap)
                    self.now = when
                else:
                    break
                event._fired = True
                callbacks = event.callbacks
                if callbacks:
                    event.callbacks = []
                    for callback in callbacks:
                        callback(event)
                events_fired += 1
                if crashed:
                    raise crashed[0].crash_error
        finally:
            if gc_was_enabled:
                gc.enable()
            self.events_fired += events_fired
            self.fastpath_holds += holds

    def _run_calendar(self, until: float | None = None) -> None:
        """Inlined run loop for the calendar scheduler.

        The urgent FIFO lane drains first, as everywhere in the kernel;
        otherwise the loop walks the *active cohort* — the bucket it
        dequeued for the current ``(time, NORMAL)`` key — one event per
        iteration, and pops the next distinct time only when the cohort
        is exhausted.  Same-key events scheduled by a cohort member
        land in a fresh bucket at the same timestamp and fire after the
        active cohort — exactly the causal-follower order the heap's
        sequence counter produces.

        Cohort firing never reorders anything: the benign/suspect gate
        (DESIGN.md §11) only chooses between this local bucket walk and
        the fully generic per-event path at multi-event sites the
        tie-auditor classification cannot vouch for.

        Fired grant-and-hold events are parked on the slab pool for
        Resource.use to reuse, and their callback lists are cleared in
        place rather than swapped (appends during a fire are dropped
        either way — a fired event never runs late callbacks), so the
        list object is recycled along with the event.

        Two inlined drains serve the fastpath-on configuration: the
        flat-index loop (paper-scale populations, native float heap)
        and a mirror loop for day-index mode (wide pending sets, O(1)
        index maintenance through the calendar's methods), switching
        on engagement/disengagement.  Bounded runs and fastpath-off
        runs (urgent events then live in the calendar's own urgent
        buckets) finish on the generic step() drain.
        """
        calendar = self._calendar
        assert calendar is not None
        urgent = self._urgent
        urgent_popleft = urgent.popleft
        heappush = heapq.heappush
        heappop = heapq.heappop
        crashed = self._crashed
        cohort_fire = self._cohort_fire
        event_pool = self._event_pool
        bucket_pool = calendar.bucket_pool
        normal = calendar.normal
        events_fired = 0
        holds = 0
        recycles = 0
        cohorts = 0
        cohort_events = 0
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if until is not None:
                # Bounded runs are diagnostics-rate; mirror run()'s
                # semantics on the generic machinery: urgent events
                # fire at the current instant (<= until), only a time
                # advance can pass the bound, and a drained queue
                # leaves the clock at the last fired event.
                while True:
                    if not urgent:
                        head = calendar.peek_time()
                        if head is None:
                            return
                        if head > until:
                            self.now = until
                            return
                    self.step()
            normal_setdefault = normal.setdefault
            normal_pop = normal.pop
            bucket: list = _NO_BUCKET
            index = 1
            size = 1
            running = self.fastpath
            while running:
                if calendar.day_mode:
                    # ---- day-index drain ------------------------------
                    # Mirror of the flat loop below: identical dispatch,
                    # cohort gate and slab recycling, but the time index
                    # lives behind the calendar's O(1) day-index methods
                    # (peek_time / _index_remove_current / insert)
                    # instead of the inlined float heap.  Entered after
                    # an engagement; hands back to the flat loop on
                    # disengage.
                    peek_time = calendar.peek_time
                    index_remove = calendar._index_remove_current
                    insert = calendar.insert
                    while True:
                        if urgent:
                            event = urgent_popleft()
                            hold = event._hold
                            if hold is not None:
                                event._hold = None
                                insert(self.now + hold, PRIORITY_NORMAL,
                                       event)
                                holds += 1
                                continue
                        elif index < size:
                            event = bucket[index]
                            index += 1
                        else:
                            if bucket is not _NO_BUCKET:
                                if len(bucket_pool) < 64:
                                    del bucket[1:]
                                    bucket[0] = 1
                                    bucket_pool.append(bucket)
                                bucket = _NO_BUCKET
                            if not calendar.day_mode:
                                break  # disengaged: back to flat loop
                            when = peek_time()
                            if when is None:
                                running = False
                                break
                            entry = normal_pop(when)
                            index_remove()
                            self.now = when
                            if type(entry) is list:
                                index = entry[0]
                                size = len(entry)
                                if size - index > 1:
                                    cohorts += 1
                                    cohort_events += size - index
                                    verdict = (self._cohort_benign(
                                        entry, index, size)
                                        if cohort_fire else 0)
                                    if not verdict:
                                        self.sched_sequenced_cohorts += 1
                                        entry[0] = index
                                        normal[when] = entry
                                        calendar._index_add(when)
                                        index = size = 1
                                        self._fire_time_sequenced(when)
                                        continue
                                    if verdict == 2:
                                        calendar.n_events -= size - index
                                        self._fire_cohort_checked(
                                            entry, index, size)
                                        index = size = 1
                                        continue
                                calendar.n_events -= size - index
                                bucket = entry
                                event = entry[index]
                                index += 1
                            else:
                                calendar.n_events -= 1
                                event = entry
                        event._fired = True
                        callbacks = event.callbacks
                        n_callbacks = len(callbacks)
                        if n_callbacks == 2:
                            first, second = callbacks
                            del callbacks[:]
                            first(event)
                            second(event)
                        elif n_callbacks == 1:
                            first = callbacks[0]
                            del callbacks[:]
                            first(event)
                        elif n_callbacks:
                            snapshot = callbacks[:]
                            del callbacks[:]
                            for callback in snapshot:
                                callback(event)
                        events_fired += 1
                        if (event._pool and not callbacks
                                and len(event_pool) < _EVENT_POOL_CAP):
                            event_pool.append(event)
                            recycles += 1
                        if crashed:
                            raise crashed[0].crash_error
                    continue
                # ---- flat-index drain ---------------------------------
                times = calendar.times
                while True:
                    if urgent:
                        event = urgent_popleft()
                        hold = event._hold
                        if hold is not None:
                            # Grant-and-hold re-key: the bucket append
                            # happens at the exact moment the heap path
                            # would allocate the re-key's sequence
                            # number, so in-bucket order stays sequence
                            # order (see repro.sim.calendar).  Inline
                            # re-keys skip the engage check —
                            # engagement waits for the next generic
                            # insert, and the overshoot is bounded by
                            # the in-flight hold population.
                            event._hold = None
                            when = self.now + hold
                            target = normal_setdefault(when, event)
                            if target is event:
                                heappush(times, when)
                            elif type(target) is list:
                                target.append(event)
                            else:
                                if bucket_pool:
                                    upgrade = bucket_pool.pop()
                                    upgrade.append(target)
                                    upgrade.append(event)
                                else:
                                    upgrade = [1, target, event]
                                normal[when] = upgrade
                            calendar.n_events += 1
                            holds += 1
                            continue
                    elif index < size:
                        event = bucket[index]
                        index += 1
                    else:
                        if bucket is not _NO_BUCKET:
                            if len(bucket_pool) < 64:
                                del bucket[1:]
                                bucket[0] = 1
                                bucket_pool.append(bucket)
                            bucket = _NO_BUCKET
                        if calendar.day_mode:
                            # A callback-driven insert engaged the day
                            # index mid-loop.  _engage_days clears the
                            # flat heap in place, so anything in it now
                            # was pushed by the inline re-key above
                            # since engagement: re-register those times
                            # with the day index, then hand over to the
                            # day-index drain.
                            for leftover in times:
                                calendar._index_add(leftover)
                            del times[:]
                            break
                        if not times:
                            running = False
                            break
                        when = heappop(times)
                        entry = normal_pop(when)
                        self.now = when
                        if type(entry) is list:
                            index = entry[0]
                            size = len(entry)
                            if size - index > 1:
                                cohorts += 1
                                cohort_events += size - index
                                verdict = (self._cohort_benign(
                                    entry, index, size)
                                    if cohort_fire else 0)
                                if not verdict:
                                    # Suspect signature (or gate off):
                                    # replay through the generic
                                    # per-event path, which re-consults
                                    # the whole queue between fires
                                    # exactly like step().  Same order,
                                    # defensively.
                                    self.sched_sequenced_cohorts += 1
                                    entry[0] = index
                                    normal[when] = entry
                                    heappush(times, when)
                                    index = size = 1
                                    self._fire_time_sequenced(when)
                                    continue
                                if verdict == 2:
                                    # Certified-commutative cohort under
                                    # REPRO_SCHED_CERTS=check: batch in
                                    # order, attributing kernel-object
                                    # traffic per member.
                                    calendar.n_events -= size - index
                                    self._fire_cohort_checked(
                                        entry, index, size)
                                    index = size = 1
                                    continue
                            # The whole cohort leaves the pending count
                            # now, like a heap pop — its members fire
                            # over the next iterations.
                            calendar.n_events -= size - index
                            bucket = entry
                            event = entry[index]
                            index += 1
                        else:
                            # Singleton cohort: the entry *is* the
                            # event — fall straight through to
                            # dispatch, no bucket bookkeeping at all.
                            calendar.n_events -= 1
                            event = entry
                    event._fired = True
                    callbacks = event.callbacks
                    n_callbacks = len(callbacks)
                    if n_callbacks == 2:
                        # The grant-and-hold shape: [release, resume].
                        first, second = callbacks
                        del callbacks[:]
                        first(event)
                        second(event)
                    elif n_callbacks == 1:
                        first = callbacks[0]
                        del callbacks[:]
                        first(event)
                    elif n_callbacks:
                        snapshot = callbacks[:]
                        del callbacks[:]
                        for callback in snapshot:
                            callback(event)
                    events_fired += 1
                    if (event._pool and not callbacks
                            and len(event_pool) < _EVENT_POOL_CAP):
                        event_pool.append(event)
                        recycles += 1
                    if crashed:
                        raise crashed[0].crash_error
            # Generic drain (see docstring).
            while urgent or calendar.peek_time() is not None:
                self.step()
        finally:
            if gc_was_enabled:
                gc.enable()
            self.events_fired += events_fired
            self.fastpath_holds += holds
            self.sched_cohorts += cohorts
            self.sched_cohort_events += cohort_events
            self.sched_pool_recycles += recycles

    def _fire_time_sequenced(self, when: float) -> None:
        """Fire everything at instant ``when`` one generic step at a
        time — the cohort gate's conservative path."""
        urgent = self._urgent
        calendar = self._calendar
        assert calendar is not None
        while urgent or calendar.peek_time() == when:
            self.step()

    def _cohort_benign(self, bucket: list, start: int, end: int) -> int:
        """Cohort gate verdict: how may this multi-event cohort fire?

        * ``0`` — sequence through the generic per-event path.
        * ``1`` — batch-fire via the local bucket walk.
        * ``2`` — batch-fire with the per-member kernel-object
          cross-check (:meth:`_fire_cohort_checked`).

        Reuses the tie auditor's site classification (DESIGN.md §8 and
        §11): the sorted set of normalised event labels forms the
        cohort's signature; single-label cohorts, cohorts of
        accounted-for kernel labels (``DEFAULT_BENIGN_LABELS``) and
        ``REPRO_AUDIT_ALLOW``-matched signatures are benign.  With
        ``REPRO_SCHED_CERTS`` set, the static certificate table
        (repro.analysis.effects, DESIGN.md §12) additionally upgrades
        statically *batchable* cohorts the runtime gate would have
        sequenced, and — in ``check`` mode — routes certified-
        *commutative* cohorts through the cross-checked path.
        Verdicts are cached per signature.
        """
        benign = self._cohort_benign_fn
        if benign is None:
            benign = self._init_cohort_gate()
        return benign(bucket, start, end)

    def _init_cohort_gate(self) -> typing.Callable[[list, int, int], int]:
        # Lazily imported on the first multi-event cohort, so the
        # analysis package costs nothing before that.
        from repro.analysis.audit import (
            SEPARATOR,
            event_label,
            normalise,
            signature_is_benign,
        )
        raw = os.environ.get("REPRO_AUDIT_ALLOW", "")
        allow = tuple(part.strip() for part in raw.split(";")
                      if part.strip())
        # REPRO_SCHED_CERTS: unset/"0" off; "1" the committed table;
        # "check" the committed table with runtime cross-checking;
        # "check:<path>"/<path> an explicit table file.
        certs = os.environ.get("REPRO_SCHED_CERTS", "").strip()
        table = None
        check_mode = False
        if certs and certs != "0":
            from repro.analysis.effects import load_table
            path: str | None = None
            if certs == "1":
                pass
            elif certs == "check":
                check_mode = True
            elif certs.startswith("check:"):
                check_mode = True
                path = certs[len("check:"):]
            else:
                path = certs
            table = load_table(path)
        cache = self._cohort_cache
        sim = self

        # Raw label -> normalised label memo: label extraction runs per
        # cohort event, but the distinct label population is bounded by
        # the process/resource count, so the regex runs once per label.
        norm_memo: dict[str, str] = {}
        # Owner -> normalised label memo, keyed by the bound-method
        # owner of an event's first callback.  Owners that precompute
        # ``audit_label`` (processes, resources) determine their label
        # outright, so the gate can skip ``event_label`` entirely for
        # them — one getattr and a dict hit per cohort member.  Keys
        # are the owner objects themselves (alive for the whole run),
        # and the dict is never iterated, so identity hashing cannot
        # leak into simulated order.
        owner_memo: dict[typing.Any, str] = {}

        def norm_of(event: typing.Any) -> str:
            callbacks = event.callbacks
            owner = (getattr(callbacks[0], "__self__", None)
                     if callbacks else None)
            if owner is not None:
                norm = owner_memo.get(owner)
                if norm is not None:
                    return norm
            label = event_label(event)
            norm = norm_memo.get(label)
            if norm is None:
                norm = norm_memo[label] = normalise(label)
            if (owner is not None
                    and getattr(owner, "audit_label", None) is not None):
                owner_memo[owner] = norm
            return norm

        def benign(bucket: list, start: int, end: int) -> int:
            # Homogeneous fast path: cohorts whose members all carry
            # one normalised label are benign by definition (symmetric
            # peers) — no signature set/sort/join, just per-member
            # memo lookups.  ``normalised`` materialises lazily on the
            # first differing label.
            first = norm_of(bucket[start])
            normalised: set[str] | None = None
            for k in range(start + 1, end):
                norm = norm_of(bucket[k])
                if normalised is not None:
                    normalised.add(norm)
                elif norm != first:
                    normalised = {first, norm}
            if normalised is None:
                return 1
            labels = sorted(normalised)
            signature = SEPARATOR.join(labels)
            # Cached verdicts carry the upgrade provenance: 3/4 are
            # the cert-upgraded variants of batch/checked, folded to
            # 1/2 after per-cohort accounting.
            verdict = cache.get(signature)
            if verdict is None:
                runtime = signature_is_benign(
                    labels, signature, benign_signatures=allow)
                if table is None:
                    verdict = 1 if runtime else 0
                else:
                    batchable, commutative = table.classify(labels)
                    upgraded = batchable and not runtime
                    if check_mode and commutative:
                        verdict = 4 if upgraded else 2
                    elif runtime or batchable:
                        verdict = 3 if upgraded else 1
                    else:
                        verdict = 0
                cache[signature] = verdict
            if verdict >= 3:
                sim.sched_cert_upgrades += 1
                return verdict - 2
            return verdict

        self._cohort_benign_fn = benign
        return benign

    def _fire_cohort_checked(self, bucket: list, start: int,
                             end: int) -> None:
        """Batch-fire a certified-commutative cohort, cross-checking
        the certificate against observed kernel-object traffic.

        Members fire in the same order as the batch walk, with the
        urgent lane drained between members exactly like the inlined
        drains — but every urgent event (resource grants, store
        handoffs, hold re-keys) is attributed to the cohort member
        whose fire produced it, via the bound-method owner of its
        first callback.  One kernel object surfacing under two
        distinct members means the members interacted through queue
        state the certificate called disjoint: the run aborts with a
        structured :class:`repro.analysis.effects.CertificateError`
        (the scheduler analogue of a repro.verify invariant failure).
        This is a detector for certificate bugs, not a prover —
        conflicts through plain attribute state are not observable
        from the kernel.
        """
        calendar = self._calendar
        assert calendar is not None
        urgent = self._urgent
        crashed = self._crashed
        # Labels are captured before any member fires: firing clears
        # an event's callbacks, which is exactly what labelling reads.
        from repro.analysis.audit import event_label
        labels = [event_label(bucket[k]) for k in range(start, end)]
        # Keyed by the kernel object itself (identity hash): membership
        # is all that matters, never order, and the strong reference
        # pins the object for the cohort's duration.
        owners: dict[object, int] = {}
        for position in range(start, end):
            member = bucket[position]
            member._fire()
            self.events_fired += 1
            if crashed:
                raise crashed[0].crash_error
            while urgent:
                pending = urgent.popleft()
                callbacks = pending.callbacks
                owner = (getattr(callbacks[0], "__self__", None)
                         if callbacks else None)
                if owner is not None:
                    seen = owners.get(owner)
                    if seen is None:
                        owners[owner] = position
                    elif seen != position:
                        self._certificate_conflict(
                            labels, seen - start, position - start,
                            owner)
                hold = pending._hold
                if hold is not None:
                    pending._hold = None
                    calendar.insert(self.now + hold, PRIORITY_NORMAL,
                                    pending)
                    self.fastpath_holds += 1
                    continue
                pending._fired = True
                if callbacks:
                    pending.callbacks = []
                    for callback in callbacks:
                        callback(pending)
                self.events_fired += 1
                if crashed:
                    raise crashed[0].crash_error
        self.sched_cert_checked += 1

    def _certificate_conflict(self, labels: list[str], first: int,
                              second: int,
                              owner: object) -> typing.NoReturn:
        """Raise the structured certified-but-conflicting error."""
        from repro.analysis.audit import SEPARATOR, normalise
        from repro.analysis.effects import CertificateError
        signature = SEPARATOR.join(
            sorted({normalise(label) for label in labels}))
        raise CertificateError(
            signature, self.now, repr(owner),
            (labels[first], labels[second]))

    def _run_audited(self, until: float | None = None) -> None:
        """step()-based run loop used when the tie auditor is on.

        Mirrors :meth:`run`'s bounded-run semantics: only a heap pop
        can advance the clock, so the bound is checked against the
        heap head before each step.

        In ``REPRO_AUDIT=reverse`` mode each batch of heap entries
        sharing one ``(time, priority)`` key is fired in *reversed*
        sequence order, with the urgent lane drained between fires
        exactly as the in-order kernel would.  Any simulated result
        that depends on the insertion-order tie-break then moves — a
        sensitivity probe for how much timing rests on the pinned
        tie order (see repro.analysis.audit).  Note that with
        ``REPRO_FASTPATH=0`` URGENT events live in the heap, so
        reversal also flips resource-grant FIFO order — expected, and
        a larger perturbation than fastpath-on reversal.
        """
        heap = self._heap
        urgent = self._urgent
        calendar = self._calendar
        auditor = self.auditor
        reverse = auditor is not None and auditor.reverse_ties
        while True:
            if not urgent:
                if calendar is not None:
                    head = calendar.peek_time()
                    if head is None:
                        break
                elif heap:
                    head = heap[0][0]
                else:
                    break
                if until is not None and head > until:
                    self.now = until
                    return
            if urgent or not reverse:
                self.step()
                continue
            # Reverse mode: collect the whole same-key batch first.
            if calendar is not None:
                when, priority, event = calendar.pop()
            else:
                when, priority, _seq, event = heapq.heappop(heap)
            self.now = when
            batch: list[Event] = []
            while True:
                hold = event._hold
                if hold is not None:
                    event._hold = None
                    if calendar is not None:
                        calendar.insert(when + hold, PRIORITY_NORMAL,
                                        event)
                    else:
                        self._sequence += 1
                        heapq.heappush(
                            heap, (when + hold, PRIORITY_NORMAL,
                                   self._sequence, event))
                    self.fastpath_holds += 1
                else:
                    batch.append(event)
                if calendar is not None:
                    if calendar.peek_key() == (when, priority):
                        _when, _priority, event = calendar.pop()
                        continue
                    break
                if (heap and heap[0][0] == when
                        and heap[0][1] == priority):
                    _when, _priority, _seq, event = heapq.heappop(heap)
                else:
                    break
            last = len(batch) - 1
            for index, event in enumerate(reversed(batch)):
                assert auditor is not None
                # Batch members coexisted in the heap by construction,
                # so they chain into one tie group; the batch boundary
                # closes it (same-key events pushed by these fires are
                # causal followers, not ties).
                auditor.record(when, priority, event, index < last)
                event._fire()
                self.events_fired += 1
                if self._crashed:
                    raise self._crashed[0].crash_error
                # Events pushed by this fire at the same key form
                # their own later batch; the urgent lane, whose order
                # is semantic FIFO, drains between tied fires as the
                # in-order kernel would drain it.  Drained inline
                # rather than via step(): once a held urgent event is
                # re-keyed into the heap, step() falls through to pop
                # the heap head — an arbitrary *future* event, because
                # the rest of this batch lives in the local list, not
                # the heap — advancing the clock mid-batch.  Only
                # urgent-lane events may fire here.
                while urgent:
                    pending = urgent.popleft()
                    hold = pending._hold
                    if hold is not None:
                        pending._hold = None
                        if calendar is not None:
                            calendar.insert(self.now + hold,
                                            PRIORITY_NORMAL, pending)
                        else:
                            self._sequence += 1
                            heapq.heappush(
                                heap, (self.now + hold, PRIORITY_NORMAL,
                                       self._sequence, pending))
                        self.fastpath_holds += 1
                        continue
                    pending._fire()
                    self.events_fired += 1
                    if self._crashed:
                        raise self._crashed[0].crash_error
        if auditor is not None:
            auditor.flush()  # close the trailing group at drain

    @property
    def queued_events(self) -> int:
        """Number of events waiting to fire (diagnostics only).

        O(1) — ``_schedule`` reads this on every call for the
        ``heap_peak`` high-water mark, so it must not scan the queue
        (a bucket scan here once made wide-pending calendar runs
        accidentally quadratic).
        """
        calendar = self._calendar
        pending = (calendar.n_events if calendar is not None
                   else len(self._heap))
        return pending + len(self._urgent)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Simulator now={self.now:.6f} "
                f"queued={self.queued_events}>")
