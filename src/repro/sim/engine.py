"""The simulation event loop.

:class:`Simulator` owns the clock and the event heap.  Model code never
touches the heap directly; it creates :class:`~repro.sim.events.Event`
objects (or the convenience wrappers below) and lets processes wait on
them.

The loop is deterministic: the heap is keyed by
``(time, priority, sequence)`` where ``sequence`` is a monotonically
increasing counter, so same-time events fire in scheduling order within
a priority class.

Fast paths
----------
Two kernel optimisations shrink the constant factor without changing a
single simulated timestamp (see DESIGN.md, "Kernel fast paths"):

* **grant-and-hold events** — :meth:`repro.sim.resources.Resource.use`
  marks its grant event with a hold duration; the run loop re-keys such
  an event ``hold`` seconds into the future on its first pop instead of
  firing it.  The sequence number for the re-keyed entry is allocated
  at exactly the moment the classic request→grant→timeout chain would
  have allocated the timeout's, so heap ordering — and therefore every
  simulated time — is bit-identical, while one full generator resume
  per resource use is skipped.
* **an urgent FIFO lane** — every URGENT schedule in the kernel is
  delay-0 (resource grants, grant-and-hold first legs, store puts), so
  such events are appended to a plain deque instead of the heap.  All
  ``(now, URGENT)`` entries sort before everything else in the heap and
  tie-break by scheduling order, which is exactly FIFO — so popping the
  deque first reproduces heap order while replacing two O(log n) heap
  operations per grant with O(1) deque operations.  ``_schedule``
  rejects an URGENT schedule with a non-zero delay to keep the
  invariant honest.
* **an inlined run loop** — :meth:`run` performs the pop/fire cycle
  with hoisted locals instead of delegating to :meth:`step`.

Set ``REPRO_FASTPATH=0`` to disable the grant-and-hold lane (the run
loop then never sees a held event); the golden parity tests exercise
both modes.
"""

from __future__ import annotations

import collections
import gc
import heapq
import os
import typing

from repro.sim.events import (
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    AllOf,
    AnyOf,
    Event,
    Timeout,
)
from repro.sim.process import Process


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Simulator:
    """A deterministic discrete-event simulator.

    Examples
    --------
    >>> sim = Simulator()
    >>> log = []
    >>> def worker(name, delay):
    ...     yield sim.timeout(delay)
    ...     log.append((sim.now, name))
    >>> _ = sim.process(worker("b", 2.0))
    >>> _ = sim.process(worker("a", 1.0))
    >>> sim.run()
    >>> log
    [(1.0, 'a'), (2.0, 'b')]
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        #: FIFO lane for delay-0 URGENT events (see module docstring).
        #: Always drained before the heap; empty when fastpath is off.
        self._urgent: collections.deque[Event] = collections.deque()
        self._sequence = 0
        #: Event-creation serial counter (stable debug identity;
        #: see Event.__repr__).
        self._event_serial = 0
        self._active_processes = 0
        self._crashed: list[Process] = []
        #: Grant-and-hold lane switch (see module docstring).
        self.fastpath: bool = os.environ.get("REPRO_FASTPATH", "1") != "0"
        #: Event-tie auditor (``REPRO_AUDIT=1``, see DESIGN.md §8 and
        #: repro.analysis.audit).  Observes same-(time, priority) heap
        #: pops; never changes pop order.  Lazily imported so the
        #: analysis package costs nothing when auditing is off.
        audit = os.environ.get("REPRO_AUDIT", "")
        if audit and audit != "0":
            from repro.analysis.audit import TieAuditor
            self.auditor: TieAuditor | None = TieAuditor.from_env()
        else:
            self.auditor = None
        #: Conformance mode (``REPRO_VERIFY=1``): route run() through
        #: the step()-based loop, whose per-pop clock guard catches any
        #: event firing before the current simulated time.
        from repro.verify import verify_enabled
        self.verify: bool = verify_enabled()
        # -- diagnostics counters (satellite: kernel observability) ----
        #: Events whose callbacks have run.
        self.events_fired = 0
        #: Grant-and-hold re-keys taken instead of full grant+timeout
        #: event pairs (fast-path hits).
        self.fastpath_holds = 0
        #: High-water mark of the event heap.
        self.heap_peak = 0

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: typing.Any = None) -> Timeout:
        """An event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """An event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """An event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    def process(self, generator: typing.Generator,
                name: str | None = None) -> Process:
        """Start a new process executing ``generator`` immediately.

        The process body runs at the current simulated time as soon as
        the loop regains control; its first ``yield`` suspends it.
        """
        return Process(self, generator, name=name)

    # -- kernel interface ----------------------------------------------------

    def _schedule(self, event: Event, delay: float,
                  priority: int = PRIORITY_NORMAL) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past: {delay!r}")
        if priority == PRIORITY_URGENT and self.fastpath:
            # Urgent FIFO lane: (now, URGENT) entries pop before
            # anything else in the heap and tie-break in scheduling
            # order, so a deque reproduces heap order exactly.  The
            # deque skips sequence allocation; relative order of the
            # remaining heap entries' sequence numbers — the only thing
            # the counter decides — is unchanged by the gaps.
            if delay != 0.0:
                raise ValueError(
                    "URGENT events must be delay-0 (urgent-lane "
                    f"invariant); got delay={delay!r}")
            urgent = self._urgent
            urgent.append(event)
            pending = len(self._heap) + len(urgent)
        else:
            self._sequence += 1
            heap = self._heap
            heapq.heappush(
                heap, (self.now + delay, priority, self._sequence, event))
            pending = len(heap) + len(self._urgent)
        if pending > self.heap_peak:
            self.heap_peak = pending

    def kernel_counters(self) -> dict:
        """Diagnostics snapshot for the experiment harness."""
        counters = {
            "events_fired": self.events_fired,
            "fastpath_holds": self.fastpath_holds,
            "heap_peak": self.heap_peak,
            "queued_events": len(self._heap) + len(self._urgent),
        }
        if self.auditor is not None:
            counters.update(self.auditor.counters())
        return counters

    def audit_report(self) -> str:
        """The event-tie auditor's text summary (``REPRO_AUDIT=1``)."""
        if self.auditor is None:
            return "event-tie audit disabled (set REPRO_AUDIT=1)"
        return self.auditor.summary()

    # -- running -------------------------------------------------------------

    def step(self) -> None:
        """Fire the single next event.

        Held (grant-and-hold) heap entries encountered on the way are
        re-keyed transparently; one call always fires exactly one
        event.
        """
        heap = self._heap
        urgent = self._urgent
        while True:
            if urgent:
                event = urgent.popleft()
                from_heap = False
                priority = PRIORITY_URGENT
            elif heap:
                when, priority, _seq, event = heapq.heappop(heap)
                if when < self.now:  # pragma: no cover - _schedule guards
                    raise SimulationError("time moved backwards")
                self.now = when
                from_heap = True
            else:
                raise SimulationError("nothing scheduled")
            hold = event._hold
            if hold is not None:
                event._hold = None
                self._sequence += 1
                heapq.heappush(heap, (self.now + hold, PRIORITY_NORMAL,
                                      self._sequence, event))
                self.fastpath_holds += 1
                continue
            # Urgent-lane pops are excluded by design: that lane is
            # semantically FIFO, so its insertion order *is* its
            # specified order, not an arbitrary tie-break.  The tie
            # flag is *coexistence*: the next heap entry shares this
            # key right now, before this event fires — an entry this
            # fire schedules at the same instant is causally ordered,
            # not tied.
            if from_heap and self.auditor is not None:
                self.auditor.record(
                    self.now, priority, event,
                    bool(heap) and heap[0][0] == self.now
                    and heap[0][1] == priority)
            event._fire()
            self.events_fired += 1
            if self._crashed:
                process = self._crashed[0]
                raise process.crash_error
            return

    def run(self, until: float | None = None) -> None:
        """Run until the heap drains (or the clock passes ``until``).

        Raises
        ------
        ProcessCrash
            If any process terminates with an unhandled exception the
            error propagates out of ``run`` immediately (fail fast).
        """
        if self.auditor is not None or self.verify:
            # The audited/verified path pays for observability with the
            # plain step() loop; simulated times are identical either
            # way (the auditor only watches pops, it never reorders
            # them, and step() checks the clock never moves backwards).
            self._run_audited(until)
            return
        # Inlined pop/fire cycle — semantically identical to calling
        # step() in a loop, with the hot locals hoisted and the
        # bounded-run (``until``) check compiled out of the common
        # run-to-completion case.
        #
        # Cyclic GC is deferred for the duration of the loop: the
        # kernel allocates millions of short-lived events and frames,
        # all of which die by reference counting — generational scans
        # find nothing to free (measured: zero cyclic garbage after a
        # full sweep) while costing ~10 % of the wall clock.
        heap = self._heap
        urgent = self._urgent
        urgent_popleft = urgent.popleft
        heappop = heapq.heappop
        heappush = heapq.heappush
        crashed = self._crashed
        events_fired = 0
        holds = 0
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while until is not None and (urgent or heap):
                # Urgent-lane events fire at the current instant, which
                # is <= until by construction; only a heap pop can
                # advance the clock past the bound.
                if urgent:
                    event = urgent_popleft()
                    # Grant-and-hold events only ever travel the urgent
                    # lane (use() appends there; the re-key below clears
                    # _hold before the heap push), so heap pops skip
                    # the hold check.
                    hold = event._hold
                    if hold is not None:
                        event._hold = None
                        self._sequence += 1
                        heappush(heap, (self.now + hold, PRIORITY_NORMAL,
                                        self._sequence, event))
                        holds += 1
                        continue
                else:
                    if heap[0][0] > until:
                        self.now = until
                        return
                    when, _priority, _seq, event = heappop(heap)
                    self.now = when
                event._fired = True
                callbacks = event.callbacks
                if callbacks:
                    event.callbacks = []
                    for callback in callbacks:
                        callback(event)
                events_fired += 1
                if crashed:
                    raise crashed[0].crash_error
            while True:
                if urgent:
                    event = urgent_popleft()
                    hold = event._hold
                    if hold is not None:
                        event._hold = None
                        self._sequence += 1
                        heappush(heap, (self.now + hold, PRIORITY_NORMAL,
                                        self._sequence, event))
                        holds += 1
                        continue
                elif heap:
                    when, _priority, _seq, event = heappop(heap)
                    self.now = when
                else:
                    break
                event._fired = True
                callbacks = event.callbacks
                if callbacks:
                    event.callbacks = []
                    for callback in callbacks:
                        callback(event)
                events_fired += 1
                if crashed:
                    raise crashed[0].crash_error
        finally:
            if gc_was_enabled:
                gc.enable()
            self.events_fired += events_fired
            self.fastpath_holds += holds

    def _run_audited(self, until: float | None = None) -> None:
        """step()-based run loop used when the tie auditor is on.

        Mirrors :meth:`run`'s bounded-run semantics: only a heap pop
        can advance the clock, so the bound is checked against the
        heap head before each step.

        In ``REPRO_AUDIT=reverse`` mode each batch of heap entries
        sharing one ``(time, priority)`` key is fired in *reversed*
        sequence order, with the urgent lane drained between fires
        exactly as the in-order kernel would.  Any simulated result
        that depends on the insertion-order tie-break then moves — a
        sensitivity probe for how much timing rests on the pinned
        tie order (see repro.analysis.audit).  Note that with
        ``REPRO_FASTPATH=0`` URGENT events live in the heap, so
        reversal also flips resource-grant FIFO order — expected, and
        a larger perturbation than fastpath-on reversal.
        """
        heap = self._heap
        urgent = self._urgent
        auditor = self.auditor
        reverse = auditor is not None and auditor.reverse_ties
        while urgent or heap:
            if until is not None and not urgent and heap[0][0] > until:
                self.now = until
                return
            if urgent or not reverse:
                self.step()
                continue
            # Reverse mode: collect the whole same-key batch first.
            when, priority, _seq, event = heapq.heappop(heap)
            self.now = when
            batch: list[Event] = []
            while True:
                hold = event._hold
                if hold is not None:
                    event._hold = None
                    self._sequence += 1
                    heapq.heappush(
                        heap, (when + hold, PRIORITY_NORMAL,
                               self._sequence, event))
                    self.fastpath_holds += 1
                else:
                    batch.append(event)
                if (heap and heap[0][0] == when
                        and heap[0][1] == priority):
                    _when, _priority, _seq, event = heapq.heappop(heap)
                else:
                    break
            last = len(batch) - 1
            for index, event in enumerate(reversed(batch)):
                assert auditor is not None
                # Batch members coexisted in the heap by construction,
                # so they chain into one tie group; the batch boundary
                # closes it (same-key events pushed by these fires are
                # causal followers, not ties).
                auditor.record(when, priority, event, index < last)
                event._fire()
                self.events_fired += 1
                if self._crashed:
                    raise self._crashed[0].crash_error
                # Events pushed by this fire at the same key form
                # their own later batch; the urgent lane, whose order
                # is semantic FIFO, drains between tied fires as the
                # in-order kernel would drain it.  Drained inline
                # rather than via step(): once a held urgent event is
                # re-keyed into the heap, step() falls through to pop
                # the heap head — an arbitrary *future* event, because
                # the rest of this batch lives in the local list, not
                # the heap — advancing the clock mid-batch.  Only
                # urgent-lane events may fire here.
                while urgent:
                    pending = urgent.popleft()
                    hold = pending._hold
                    if hold is not None:
                        pending._hold = None
                        self._sequence += 1
                        heapq.heappush(
                            heap, (self.now + hold, PRIORITY_NORMAL,
                                   self._sequence, pending))
                        self.fastpath_holds += 1
                        continue
                    pending._fire()
                    self.events_fired += 1
                    if self._crashed:
                        raise self._crashed[0].crash_error
        if auditor is not None:
            auditor.flush()  # close the trailing group at drain

    @property
    def queued_events(self) -> int:
        """Number of events waiting to fire (diagnostics only)."""
        return len(self._heap) + len(self._urgent)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Simulator now={self.now:.6f} "
                f"queued={self.queued_events}>")
