"""The simulation event loop.

:class:`Simulator` owns the clock and the event heap.  Model code never
touches the heap directly; it creates :class:`~repro.sim.events.Event`
objects (or the convenience wrappers below) and lets processes wait on
them.

The loop is deterministic: the heap is keyed by
``(time, priority, sequence)`` where ``sequence`` is a monotonically
increasing counter, so same-time events fire in scheduling order within
a priority class.
"""

from __future__ import annotations

import heapq
import typing

from repro.sim.events import (
    PRIORITY_NORMAL,
    AllOf,
    AnyOf,
    Event,
    Timeout,
)
from repro.sim.process import Process


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Simulator:
    """A deterministic discrete-event simulator.

    Examples
    --------
    >>> sim = Simulator()
    >>> log = []
    >>> def worker(name, delay):
    ...     yield sim.timeout(delay)
    ...     log.append((sim.now, name))
    >>> _ = sim.process(worker("b", 2.0))
    >>> _ = sim.process(worker("a", 1.0))
    >>> sim.run()
    >>> log
    [(1.0, 'a'), (2.0, 'b')]
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._sequence = 0
        self._active_processes = 0
        self._crashed: list[Process] = []

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: typing.Any = None) -> Timeout:
        """An event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """An event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """An event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    def process(self, generator: typing.Generator,
                name: str | None = None) -> Process:
        """Start a new process executing ``generator`` immediately.

        The process body runs at the current simulated time as soon as
        the loop regains control; its first ``yield`` suspends it.
        """
        return Process(self, generator, name=name)

    # -- kernel interface ----------------------------------------------------

    def _schedule(self, event: Event, delay: float,
                  priority: int = PRIORITY_NORMAL) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past: {delay!r}")
        self._sequence += 1
        heapq.heappush(
            self._heap, (self.now + delay, priority, self._sequence, event))

    # -- running -------------------------------------------------------------

    def step(self) -> None:
        """Fire the single next event."""
        when, _priority, _seq, event = heapq.heappop(self._heap)
        if when < self.now:  # pragma: no cover - guarded by _schedule
            raise SimulationError("time moved backwards")
        self.now = when
        event._fire()
        if self._crashed:
            process = self._crashed[0]
            raise process.crash_error

    def run(self, until: float | None = None) -> None:
        """Run until the heap drains (or the clock passes ``until``).

        Raises
        ------
        ProcessCrash
            If any process terminates with an unhandled exception the
            error propagates out of ``run`` immediately (fail fast).
        """
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return
            self.step()

    @property
    def queued_events(self) -> int:
        """Number of events waiting in the heap (diagnostics only)."""
        return len(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Simulator now={self.now:.6f} "
                f"queued={len(self._heap)}>")
