"""Contended resources and message stores.

:class:`Resource` models a fixed-capacity server with a FIFO wait queue
— one per CPU, one per disk arm, one for the token ring.  The usage
idiom is::

    grant = yield resource.request()
    try:
        yield sim.timeout(service_time)
    finally:
        resource.release(grant)

or, equivalently, the one-shot helper ``yield from resource.use(dt)``.

:class:`Store` is an unbounded FIFO queue of items used as a process
mailbox: ``put`` never blocks, ``get`` returns an event that fires when
an item is available.  Items are delivered in arrival order, one per
waiting getter, never duplicated and never lost (tested property-based).
"""

from __future__ import annotations

import collections
import typing

from repro.sim.events import PRIORITY_URGENT, Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class Grant:
    """Token proving a request was granted; required for release."""

    __slots__ = ("resource", "released")

    def __init__(self, resource: "Resource") -> None:
        self.resource = resource
        self.released = False


class Resource:
    """A FIFO-queued resource with ``capacity`` concurrent users.

    Tracks utilisation statistics (total busy time integrated over
    users) so the experiment harness can report CPU utilisation the way
    §5 of the paper does for local vs remote joins.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1,
                 name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        #: Precomputed tie-audit label (see repro.analysis.audit
        #: .event_label) — hold expiries of this resource are labelled
        #: at kernel rate by the cohort-fire gate.
        self.audit_label = f"{type(self).__name__.lower()}:{name}"
        self._in_use = 0
        #: FIFO of (event, grant) waiters; fast-path holds queue with
        #: a None grant (release is inline, no token to return).
        self._waiting: collections.deque[tuple[Event, Grant | None]] = (
            collections.deque())
        # Statistics
        self.busy_time = 0.0
        self._last_change = 0.0
        self.total_acquisitions = 0
        #: Pre-bound hold-release callback — ``use`` runs ~300k times
        #: per sweep point, so the bound-method allocation is hoisted.
        self._release_cb = self._release_after_hold

    # -- acquisition -----------------------------------------------------

    def request(self) -> Event:
        """An event that fires with a :class:`Grant` when capacity frees."""
        event = Event(self.sim)
        grant = Grant(self)
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            self.total_acquisitions += 1
            event.succeed(grant, priority=PRIORITY_URGENT)
        else:
            self._waiting.append((event, grant))
        return event

    def release(self, grant: Grant) -> None:
        """Return capacity; hands it to the oldest waiter, if any."""
        if grant.resource is not self:
            raise ValueError("grant belongs to a different resource")
        if grant.released:
            raise RuntimeError("double release of a resource grant")
        grant.released = True
        if self._waiting:
            event, next_grant = self._waiting.popleft()
            self.total_acquisitions += 1
            event.succeed(next_grant, priority=PRIORITY_URGENT)
        else:
            self._account()
            self._in_use -= 1

    def use(self, duration: float) -> typing.Iterable[Event]:
        """``yield from`` helper: acquire, hold for ``duration``, release.

        On the fast path (``sim.fastpath``, the default) the
        request→grant→timeout→release event chain is collapsed into a
        single *grant-and-hold* event: the grant is scheduled exactly
        like :meth:`request`'s, but carries the hold duration, and the
        run loop re-keys it ``duration`` seconds ahead on its first pop
        — at the very moment the classic path's process resume would
        have scheduled its timeout, so the heap sequence numbering (and
        every simulated time) is unchanged while one full generator
        resume per use is saved.  Waiters of both flavours share the
        same FIFO queue and are granted identically.

        The fast path returns a plain 1-tuple rather than a generator
        (one less frame per use on the kernel's hottest chain); the
        release runs as the hold event's first callback — before the
        waiting process resumes, exactly when the generator form's
        ``finally`` would have run it, so event ordering is unchanged.
        The hold event always carries value ``None``, which is what
        makes ``yield from`` over a plain tuple legal (PEP 380 sends
        ``None`` as ``next()``).
        """
        sim = self.sim
        if not sim.fastpath:
            return self._use_classic(duration)
        pool = sim._event_pool
        if pool:
            # Slab lane (DESIGN.md §11): reuse a fired grant-and-hold
            # event.  The calendar run loop only parks events whose
            # callbacks have run and whose (cleared-in-place) callback
            # list is empty, so just the per-use fields need resetting
            # — the list object itself is recycled too.
            event = pool.pop()
            sim._event_serial = event._serial = sim._event_serial + 1
            event.callbacks.append(self._release_cb)
            # A recycled Store.get event still carries its delivered
            # item; a hold event must fire with None (PEP 380 sends it
            # into the plain tuple ``yield from``).
            event._value = None
            event._fired = False
            event._hold = duration
        else:
            # Inlined Event(sim) + _hold setup (one Python frame per
            # use saved on the kernel's single hottest allocation
            # site).
            event = Event.__new__(Event)
            event.sim = sim
            sim._event_serial = event._serial = sim._event_serial + 1
            event.callbacks = [self._release_cb]
            event._value = None
            event._ok = True
            event._fired = False
            event._hold = duration
            event._pool = True
        # Busy time is credited as the hold duration up front: every
        # use() holds for exactly ``duration`` once granted, so the sum
        # of durations equals the in_use-integral the classic
        # _account() bookkeeping computes — at any drained instant,
        # which is when utilisation is read.
        self.busy_time += duration
        if self._in_use < self.capacity:
            self._in_use += 1
            self.total_acquisitions += 1
            event._triggered = True
            # Inlined _schedule for the urgent lane (delay-0 URGENT
            # events go to the FIFO deque, never the heap).
            sim._urgent.append(event)
        else:
            event._triggered = False
            self._waiting.append((event, None))
        return (event,)

    def _release_after_hold(self, _event: Event) -> None:
        """Inline release (no Grant token) when a hold event fires.

        Only ever registered from :meth:`use`'s fast path, so the
        urgent-lane append can be inlined unconditionally (an URGENT
        delay-0 succeed is exactly this when ``sim.fastpath`` is on).
        """
        if self._waiting:
            waiter, next_grant = self._waiting.popleft()
            self.total_acquisitions += 1
            waiter._triggered = True
            waiter._value = next_grant
            self.sim._urgent.append(waiter)
        else:
            self._in_use -= 1

    def _use_classic(self, duration: float
                     ) -> typing.Generator[Event, typing.Any, None]:
        """The unbatched request→timeout→release chain
        (``REPRO_FASTPATH=0``)."""
        grant = yield self.request()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release(grant)

    # -- introspection ------------------------------------------------------

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def _account(self) -> None:
        now = self.sim.now
        self.busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    def utilisation(self, horizon: float | None = None) -> float:
        """Fraction of ``horizon`` (default: now) this resource was busy."""
        self._account()
        horizon = self.sim.now if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        return self.busy_time / (horizon * self.capacity)

    def conformance_snapshot(self) -> dict[str, typing.Any]:
        """Introspection as plain data (the ``REPRO_VERIFY`` monitor
        reads this after the event loop drains; valid any time, but the
        fast path credits each hold's busy time at issue, so busy-time
        comparisons only balance once no holds are in flight)."""
        return {
            "name": self.name,
            "capacity": self.capacity,
            "in_use": self._in_use,
            "queue_length": len(self._waiting),
            "busy_time": self.busy_time,
            "acquisitions": self.total_acquisitions,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Resource {self.name!r} {self._in_use}/{self.capacity} "
                f"queue={len(self._waiting)}>")


class Store:
    """Unbounded FIFO item queue (process mailbox)."""

    def __init__(self, sim: "Simulator", name: str = "store") -> None:
        self.sim = sim
        self.name = name
        self._items: collections.deque[typing.Any] = collections.deque()
        self._getters: collections.deque[Event] = collections.deque()
        self.total_puts = 0
        self.total_gets = 0

    def put(self, item: typing.Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter."""
        self.total_puts += 1
        if self._getters:
            getter = self._getters.popleft()
            self.total_gets += 1
            sim = self.sim
            if sim.fastpath:
                # Inlined succeed() for the urgent lane (delay-0
                # URGENT events go to the FIFO deque, never the heap)
                # — one of the kernel's hottest schedule sites.
                getter._triggered = True
                getter._value = item
                sim._urgent.append(getter)
            else:
                getter.succeed(item, priority=PRIORITY_URGENT)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event that fires with the next item."""
        sim = self.sim
        if not sim.fastpath:
            event = Event(sim)
            if self._items:
                self.total_gets += 1
                event.succeed(self._items.popleft(),
                              priority=PRIORITY_URGENT)
            else:
                self._getters.append(event)
            return event
        # Inlined Event(sim) + urgent-lane succeed (one mailbox get per
        # delivered message makes this a kernel-rate allocation site).
        # Like use()'s grant-and-hold events, get events are owned by
        # the kernel once fired (their value is consumed synchronously
        # by the resumed process), so they share the slab pool.
        pool = sim._event_pool
        if pool:
            event = pool.pop()
            sim._event_serial = event._serial = sim._event_serial + 1
            event._fired = False
        else:
            event = Event.__new__(Event)
            event.sim = sim
            sim._event_serial = event._serial = sim._event_serial + 1
            event.callbacks = []
            event._ok = True
            event._fired = False
            event._hold = None
            event._pool = True
        if self._items:
            self.total_gets += 1
            event._triggered = True
            event._value = self._items.popleft()
            sim._urgent.append(event)
        else:
            event._triggered = False
            event._value = None
            self._getters.append(event)
        return event

    @property
    def pending_items(self) -> int:
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        return len(self._getters)

    def conformance_snapshot(self) -> dict[str, typing.Any]:
        """Introspection as plain data (``REPRO_VERIFY`` drain checks:
        a finished query must leave puts == gets, nothing pending and
        no stranded getters)."""
        return {
            "name": self.name,
            "total_puts": self.total_puts,
            "total_gets": self.total_gets,
            "pending_items": len(self._items),
            "waiting_getters": len(self._getters),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Store {self.name!r} items={len(self._items)} "
                f"getters={len(self._getters)}>")
