"""Generator-based simulated processes.

A process is a Python generator that ``yield``\\ s
:class:`~repro.sim.events.Event` objects.  Yielding suspends the process
until the event fires; the event's value becomes the value of the
``yield`` expression.  A process is itself an event that fires (with the
generator's return value) when the generator finishes, so processes can
wait on each other::

    def parent(sim):
        child_proc = sim.process(child(sim))
        result = yield child_proc          # join
        ...

Unhandled exceptions inside a process are wrapped in
:class:`ProcessCrash` and propagated out of :meth:`Simulator.run` —
model bugs fail fast instead of silently deadlocking the simulation.
"""

from __future__ import annotations

import typing

from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator


class ProcessCrash(RuntimeError):
    """An unhandled exception escaped a simulated process."""

    def __init__(self, process: "Process", cause: BaseException) -> None:
        super().__init__(
            f"process {process.name!r} crashed: {cause!r}")
        self.process = process
        self.cause = cause


class Process(Event):
    """A running simulated process (also an event: fires on completion)."""

    __slots__ = ("generator", "name", "crash_error", "_send",
                 "audit_label")

    def __init__(self, sim: "Simulator", generator: typing.Generator,
                 name: str | None = None) -> None:
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process body must be a generator, got {generator!r} — "
                "did you call a plain function instead of a generator "
                "function?")
        self.generator = generator
        #: generator.send cached once — _resume runs once per fired
        #: event, so the per-call bound-method lookup is hoisted here.
        self._send = generator.send
        self.name = name or getattr(generator, "__name__", "process")
        #: Precomputed tie-audit label (see repro.analysis.audit
        #: .event_label) — resumes of this process are labelled at
        #: kernel rate by the cohort-fire gate.
        self.audit_label = f"{type(self).__name__.lower()}:{self.name}"
        self.crash_error: ProcessCrash | None = None
        # Kick off the process at the current instant.
        start = Event(sim)
        start.callbacks.append(self._resume)
        start.succeed()

    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def _resume(self, event: Event) -> None:
        """Advance the generator by one event.

        Hot path: runs once per fired event, so the event state is read
        through slots rather than the public properties and the
        generator methods are hoisted out of the loop.
        """
        generator = self.generator
        send = self._send
        while True:
            try:
                if event._ok:
                    target = send(event._value)
                else:
                    target = generator.throw(event._value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - fail fast
                self.crash_error = ProcessCrash(self, exc)
                self.crash_error.__cause__ = exc
                self.sim._crashed.append(self)
                # Still trigger so waiters do not hang forever; the
                # simulator raises before any waiter observes this.
                self.fail(self.crash_error)
                return
            try:
                if target._fired:
                    # The event already happened — continue
                    # synchronously with its value, not re-queueing.
                    event = target
                    continue
                target.callbacks.append(self._resume)
                return
            except AttributeError:
                error = TypeError(
                    f"process {self.name!r} yielded {target!r}; processes "
                    "may only yield Event instances")
                self.crash_error = ProcessCrash(self, error)
                self.sim._crashed.append(self)
                self.fail(self.crash_error)
                return

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
