"""Runtime invariant checkers (the ``REPRO_VERIFY=1`` monitor).

A :class:`ConformanceMonitor` is attached to a
:class:`~repro.engine.machine.GammaMachine` at construction when the
gate is open.  Operators feed it an *independent* ledger — tuples
scanned and routed, packets and tuples received, pages read and
written per node — through tiny ``monitor is not None`` hooks on the
hot paths.  When the simulation drains, :meth:`check_machine`
cross-checks the ledger against the engine's own counters, and
:meth:`check_join` validates each driver's result against the
unsimulated reference join.

The invariants (names appear in :class:`ConformanceError` messages):

``tuple-conservation``
    Every tuple buffered into a router was transmitted
    (sum of ``Router.tuples_routed`` == network ``data_tuples``), and
    every transmitted tuple/packet was dequeued by a consumer.
``scan-conservation``
    Tuples scanned == tuples routed by the scan loops (strict only
    when no selection predicate and no bit-filter policy can drop
    tuples).
``mailbox-drain``
    Every mailbox ends empty: puts == gets, no pending items, no
    stranded getters.
``page-accounting``
    Per node, the disk's page counters match the operators' ledger,
    and the arm's busy time equals the per-kind page counts times the
    calibrated transfer times.
``network-conservation``
    Ring bytes carried imply exactly the medium's busy time
    (``bytes / bandwidth``), and bytes never exceed capacity x busy.
``resource-sanity``
    Post-drain, every resource is idle with an empty queue and its
    busy time fits inside ``makespan x capacity``.
``split-table``
    A split table routes only to its operator set and starves no join
    site; bucket labels stay in range.
``join-result``
    Join output cardinality (and, when collected, the exact result
    multiset) equals the reference join; phase timings are sane.
"""

from __future__ import annotations

import math
import typing

from repro.verify import ConformanceError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.joins.base import JoinDriver, JoinResult
    from repro.core.split_table import SplitTable
    from repro.engine.machine import GammaMachine
    from repro.engine.operators.routing import Router
    from repro.sim.resources import Resource

#: Relative tolerance for float ledger comparisons.  Ledgers are sums
#: of the same quantities accumulated in a different order, so they
#: agree to rounding error only.
REL_TOL = 1e-9
ABS_TOL = 1e-9


class ConformanceMonitor:
    """Independent ledgers + cross-checks for one machine."""

    def __init__(self, machine: "GammaMachine") -> None:
        self.machine = machine
        self.routers: list["Router"] = []
        self.drivers: list["JoinDriver"] = []
        #: True once any driver may legitimately drop scanned tuples
        #: (selection predicates, bit-filter elimination) — the strict
        #: scanned == routed equality is skipped then.
        self.scan_may_drop = False
        self.tuples_scanned = 0
        self.tuples_scan_routed = 0
        self.packets_received = 0
        self.tuples_received = 0
        self.expected_page_reads: dict[int, int] = {}
        self.expected_page_writes: dict[int, int] = {}
        #: Names of invariants that were checked and held.
        self.checks_passed: list[str] = []
        self.split_tables_checked = 0

    # -- hooks (called from the operators) --------------------------------

    def register_router(self, router: "Router") -> None:
        self.routers.append(router)

    def note_driver(self, driver: "JoinDriver") -> None:
        self.drivers.append(driver)
        spec = driver.spec
        if (spec.inner_predicate is not None
                or spec.outer_predicate is not None
                or driver.filter_policy.active):
            self.scan_may_drop = True

    def note_scan(self, node_id: int, tuples: int, routed: int,
                  pages_read: int) -> None:
        """One finished ``scan_pages`` call: tuples seen, tuples the
        call's routers accepted, and pages it read from disk."""
        self.tuples_scanned += tuples
        self.tuples_scan_routed += routed
        if pages_read:
            self.expected_page_reads[node_id] = (
                self.expected_page_reads.get(node_id, 0) + pages_read)

    def note_received(self, n_tuples: int) -> None:
        """One DataPacket dequeued by a consuming operator."""
        self.packets_received += 1
        self.tuples_received += n_tuples

    def note_page_reads(self, node_id: int, pages: int) -> None:
        self.expected_page_reads[node_id] = (
            self.expected_page_reads.get(node_id, 0) + pages)

    def note_page_writes(self, node_id: int, pages: int) -> None:
        self.expected_page_writes[node_id] = (
            self.expected_page_writes.get(node_id, 0) + pages)

    # -- split-table validation --------------------------------------------

    def check_split_table(self, table: "SplitTable",
                          expected_nodes: typing.Sequence[int],
                          phase: str | None = None,
                          num_buckets: int | None = None) -> None:
        """A split table must route only to its operator set, starve
        none of them, and keep bucket labels in range."""
        self.split_tables_checked += 1
        entry_nodes = table.destination_node_ids()
        expected = set(expected_nodes)
        strays = sorted(set(entry_nodes) - expected)
        if strays:
            raise ConformanceError(
                "split table routes tuples to nodes outside the "
                "operator set",
                invariant="split-table", phase=phase,
                deltas={"stray_nodes": strays,
                        "expected_nodes": sorted(expected)})
        starved = sorted(expected - set(entry_nodes))
        if starved:
            raise ConformanceError(
                "split table starves operator nodes (no entry routes "
                "to them)",
                invariant="split-table", phase=phase,
                deltas={"starved_nodes": starved,
                        "entry_nodes": list(entry_nodes)})
        if num_buckets is not None:
            bad = sorted({entry.bucket for entry in table.entries
                          if not 0 <= entry.bucket < num_buckets})
            if bad:
                raise ConformanceError(
                    "split table carries out-of-range bucket labels",
                    invariant="split-table", phase=phase,
                    deltas={"bad_buckets": bad,
                            "num_buckets": num_buckets})

    # -- machine-wide checks (post-drain) -----------------------------------

    def check_machine(self) -> None:
        """Cross-check every ledger once the event loop has drained."""
        self._check_tuple_conservation()
        self._check_scan_conservation()
        self._check_mailboxes()
        self._check_pages()
        self._check_network()
        self._check_resources()

    def _passed(self, name: str) -> None:
        self.checks_passed.append(name)

    def _check_tuple_conservation(self) -> None:
        stats = self.machine.network.stats
        routed = sum(router.tuples_routed for router in self.routers)
        if routed != stats.data_tuples:
            raise ConformanceError(
                "tuples buffered into routers != data tuples "
                "transmitted (a router dropped or duplicated tuples)",
                invariant="tuple-conservation",
                deltas={"tuples_routed": routed,
                        "data_tuples_sent": stats.data_tuples})
        if self.tuples_received != stats.data_tuples:
            raise ConformanceError(
                "data tuples transmitted != tuples dequeued by "
                "consumers",
                invariant="tuple-conservation",
                deltas={"data_tuples_sent": stats.data_tuples,
                        "tuples_received": self.tuples_received})
        if self.packets_received != stats.data_packets:
            raise ConformanceError(
                "data packets transmitted != packets dequeued by "
                "consumers",
                invariant="tuple-conservation",
                deltas={"data_packets_sent": stats.data_packets,
                        "packets_received": self.packets_received})
        unflushed = [router.port for router in self.routers
                     if not router.closed]
        if unflushed:
            raise ConformanceError(
                "routers left open at end of run (partial packets may "
                "be stranded)",
                invariant="tuple-conservation",
                deltas={"open_ports": unflushed[:8]})
        self._passed("tuple-conservation")

    def _check_scan_conservation(self) -> None:
        if self.scan_may_drop:
            return
        if self.tuples_scanned != self.tuples_scan_routed:
            raise ConformanceError(
                "tuples scanned != tuples routed with no predicate or "
                "filter that could drop them",
                invariant="scan-conservation",
                deltas={"tuples_scanned": self.tuples_scanned,
                        "tuples_routed": self.tuples_scan_routed})
        self._passed("scan-conservation")

    def _check_mailboxes(self) -> None:
        for address, box in self.machine.registry._mailboxes.items():
            deltas = box.conformance_snapshot()
            if box.pending_items or box.total_puts != box.total_gets:
                raise ConformanceError(
                    f"mailbox {address!r} did not drain",
                    invariant="mailbox-drain", node=address[0],
                    deltas=deltas)
            if box.waiting_getters:
                raise ConformanceError(
                    f"mailbox {address!r} has stranded getters",
                    invariant="mailbox-drain", node=address[0],
                    deltas=deltas)
        self._passed("mailbox-drain")

    def _check_pages(self) -> None:
        costs = self.machine.costs
        for node in self.machine.disk_nodes:
            disk = node.disk
            if disk is None:  # pragma: no cover - disk_nodes have disks
                continue
            expected_reads = self.expected_page_reads.get(node.node_id, 0)
            expected_writes = self.expected_page_writes.get(node.node_id, 0)
            deltas = {
                "pages_read": disk.pages_read,
                "expected_reads": expected_reads,
                "pages_written": disk.pages_written,
                "expected_writes": expected_writes,
            }
            if disk.pages_read != expected_reads:
                raise ConformanceError(
                    "disk read counter disagrees with the operators' "
                    "page ledger",
                    invariant="page-accounting", node=node.name,
                    deltas=deltas)
            if disk.pages_written != expected_writes:
                raise ConformanceError(
                    "disk write counter disagrees with the operators' "
                    "page ledger",
                    invariant="page-accounting", node=node.name,
                    deltas=deltas)
            if (disk.sequential_reads + disk.random_reads
                    != disk.pages_read
                    or disk.sequential_writes + disk.random_writes
                    != disk.pages_written):
                raise ConformanceError(
                    "disk sequential/random split does not sum to the "
                    "page totals",
                    invariant="page-accounting", node=node.name,
                    deltas={"sequential_reads": disk.sequential_reads,
                            "random_reads": disk.random_reads,
                            "sequential_writes": disk.sequential_writes,
                            "random_writes": disk.random_writes,
                            **deltas})
            expected_busy = (
                disk.sequential_reads * costs.disk_page_read_sequential
                + disk.random_reads * costs.disk_page_read_random
                + disk.sequential_writes * costs.disk_page_write_sequential
                + disk.random_writes * costs.disk_page_write_random)
            if not math.isclose(disk.arm.busy_time, expected_busy,
                                rel_tol=REL_TOL, abs_tol=ABS_TOL):
                raise ConformanceError(
                    "disk arm busy time disagrees with page counts x "
                    "calibrated transfer times",
                    invariant="page-accounting", node=node.name,
                    deltas={"arm_busy_time": disk.arm.busy_time,
                            "expected_busy_time": expected_busy})
        self._passed("page-accounting")

    def _check_network(self) -> None:
        # Every interconnect publishes one conservation entry per
        # modelled medium (the shared ring has exactly one; a fabric
        # has an uplink and a downlink per node; a hypercube one per
        # crossed edge): the busy-time integral must equal the one its
        # byte/packet counters imply, and carried bytes can never
        # exceed bandwidth x busy time.
        interconnect = self.machine.ring
        bandwidth = interconnect.costs.ring_bandwidth
        for entry in interconnect.ledger():
            busy = entry["busy_time"]
            expected_busy = entry["expected_busy_time"]
            if not math.isclose(busy, expected_busy,
                                rel_tol=1e-6, abs_tol=ABS_TOL):
                raise ConformanceError(
                    "interconnect medium busy time disagrees with its "
                    "carried traffic x calibrated costs",
                    invariant="network-conservation",
                    node=entry["name"],
                    deltas={"medium_busy_time": busy,
                            "expected_busy_time": expected_busy,
                            "bytes_carried": entry["bytes_carried"]})
            capacity_bytes = bandwidth * busy
            if entry["bytes_carried"] > capacity_bytes * (1 + 1e-6) + 1:
                raise ConformanceError(
                    "medium carried more bytes than capacity x busy "
                    "time",
                    invariant="network-conservation",
                    node=entry["name"],
                    deltas={"bytes_carried": entry["bytes_carried"],
                            "capacity_bytes": capacity_bytes})
        self._passed("network-conservation")

    def _check_resources(self) -> None:
        makespan = self.machine.sim.now
        resources: list["Resource"] = [node.cpu
                                       for node in self.machine.nodes]
        resources.extend(node.disk.arm for node in self.machine.disk_nodes
                         if node.disk is not None)
        resources.extend(self.machine.ring.media())
        for resource in resources:
            snap = resource.conformance_snapshot()
            if snap["in_use"] or snap["queue_length"]:
                raise ConformanceError(
                    "resource still held or queued after the event "
                    "loop drained",
                    invariant="resource-sanity", node=resource.name,
                    deltas=snap)
            limit = makespan * resource.capacity
            if snap["busy_time"] < -ABS_TOL or (
                    snap["busy_time"] > limit * (1 + REL_TOL) + ABS_TOL):
                raise ConformanceError(
                    "resource busy time exceeds makespan x capacity",
                    invariant="resource-sanity", node=resource.name,
                    deltas={"makespan": makespan, **snap})
        self._passed("resource-sanity")

    # -- per-join checks -----------------------------------------------------

    def check_join(self, driver: "JoinDriver",
                   result: "JoinResult") -> None:
        """Validate one driver's result against the reference join."""
        from repro.core.joins.reference import reference_join
        spec = driver.spec
        expected = reference_join(
            driver.outer, driver.inner,
            spec.outer_attribute, spec.inner_attribute,
            outer_predicate=spec.outer_predicate,
            inner_predicate=spec.inner_predicate)
        if result.result_tuples != len(expected):
            raise ConformanceError(
                "join output cardinality differs from the reference "
                "join",
                invariant="join-result", phase=driver.algorithm,
                deltas={"result_tuples": result.result_tuples,
                        "reference_tuples": len(expected)})
        if result.result_rows is not None:
            import collections
            actual_counts = collections.Counter(result.result_rows)
            expected_counts = collections.Counter(expected)
            if actual_counts != expected_counts:
                missing = expected_counts - actual_counts
                extra = actual_counts - expected_counts
                raise ConformanceError(
                    "join output multiset differs from the reference "
                    "join",
                    invariant="join-result", phase=driver.algorithm,
                    deltas={"missing": sum(missing.values()),
                            "unexpected": sum(extra.values())})
        self._check_phases(driver, result)
        self._passed("join-result")

    def _check_phases(self, driver: "JoinDriver",
                      result: "JoinResult") -> None:
        if result.response_time < 0:
            raise ConformanceError(
                "negative response time",
                invariant="join-result", phase=driver.algorithm,
                deltas={"response_time": result.response_time})
        total = 0.0
        for stat in result.phases:
            if stat.duration < -ABS_TOL:
                raise ConformanceError(
                    "negative phase duration",
                    invariant="join-result", phase=stat.name,
                    deltas={"start": stat.start, "end": stat.end})
            total += stat.duration
        if total > result.response_time * (1 + REL_TOL) + ABS_TOL:
            raise ConformanceError(
                "phase durations sum past the response time",
                invariant="join-result", phase=driver.algorithm,
                deltas={"phase_total": total,
                        "response_time": result.response_time})

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict[str, typing.Any]:
        """The ledger + pass record, as plain picklable data."""
        return {
            "checks_passed": list(self.checks_passed),
            "tuples_scanned": self.tuples_scanned,
            "tuples_scan_routed": self.tuples_scan_routed,
            "packets_received": self.packets_received,
            "tuples_received": self.tuples_received,
            "routers": len(self.routers),
            "split_tables_checked": self.split_tables_checked,
        }
