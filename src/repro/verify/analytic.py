"""Appendix-A-style analytic cost model (``repro.verify.analytic``).

The paper's Appendix A predicts join response times from closed-form
arithmetic over catalog statistics and calibrated cost constants.
This module does the same for the simulator: given the relation
cardinalities, tuple widths, machine shape and a
:class:`~repro.costs.CostModel`, it predicts the duration of **every
named phase** of each of the four algorithms, and :func:`assess`
cross-checks a simulated :class:`~repro.core.joins.base.JoinResult`
against those predictions.

The model is deliberately *analytic*, not a replay: per-phase work is
aggregated per node class (uniform-hash assumption) and the elapsed
time of a pipelined phase is bracketed between

* ``lower`` — the busiest single resource (no node can finish before
  its own CPU or disk demand, and a producer's scan alternates page
  reads with routing CPU, so its own disk + CPU chain is serial), and
* ``upper`` — full serialisation of the busiest node's CPU and disk,

with the midpoint reported as the prediction.  Serial costs (scheduler
start-up/completion messages, split-table fragmentation, control
rounds) are computed exactly — they are pure arithmetic in the
simulator too, including the §4.1 effect where a partitioning split
table larger than one 2 KB packet ships in pieces.

Model scope (``assess`` returns ``None`` outside it): uniform
workloads without selection predicates, bit filters, hash-table
overflow or probe-side spooling, on the shared ``token-ring``
interconnect (any registered hardware profile — every cost constant
comes from the active :class:`~repro.costs.CostModel`, split-table
sizes from :data:`~repro.core.split_table.SPLIT_ENTRY_BYTES`, and
node counts from the machine shape; the routed topologies break the
shared-medium lower bound and are explicitly out of
scope).  Within scope the model tracks the
simulator to within :data:`REL_TOLERANCE` of each phase (plus
:data:`ABS_TOLERANCE` seconds of floor for sub-second phases) — the
band is calibrated in ``tests/verify/test_analytic.py`` and breached
predictions raise :class:`~repro.verify.ConformanceError`.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.core.split_table import SPLIT_ENTRY_BYTES
from repro.costs import CostModel
from repro.verify import ConformanceError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.joins.base import JoinResult
    from repro.engine.machine import GammaMachine
    from repro.wisconsin.database import WisconsinDatabase

#: Documented per-phase relative tolerance band of the model.
#: Calibration (scales 0.02/0.05 × hpja on/off × local/remote × all
#: four algorithms × the Figure 5 memory ratios, 968 phase
#: comparisons) observed a worst-case per-phase error of 10.2% and a
#: worst-case whole-query error of 3.3%; the band is set at roughly
#: twice the observed worst case.
REL_TOLERANCE = 0.20
#: Absolute floor (seconds) — protects sub-second phases, whose
#: durations are dominated by per-message scheduling granularity.
ABS_TOLERANCE = 0.25


@dataclasses.dataclass(frozen=True)
class PhaseEstimate:
    """The predicted duration bracket of one named phase."""

    name: str
    predicted: float
    lower: float
    upper: float


@dataclasses.dataclass(frozen=True)
class Workload:
    """Catalog statistics the model predicts from."""

    n_inner: int
    inner_bytes: int        # tuple width of R
    n_outer: int
    outer_bytes: int        # tuple width of S
    n_result: int           # reference-join cardinality
    inner_total_bytes: int  # |R| in bytes (bucket planning input)
    aggregate_memory: int   # joining/sorting memory in bytes
    bucket_policy: str = "pessimistic"
    num_buckets_override: int | None = None
    #: HPJA alignment (§4.1 / Table 2): the relation is hash-declustered
    #: on the join attribute with the routing hash family, so every
    #: modulo-compatible split table sends each tuple back to the node
    #: class slot it already lives on.
    inner_aligned: bool = False
    outer_aligned: bool = False
    #: Fraction of outer tuples whose key is <= the inner's high key —
    #: the merge join stops reading S past it (§4.4 skipped reads).
    merge_overlap: float = 1.0


# --------------------------------------------------------------------------
# Elementary serial costs
# --------------------------------------------------------------------------

def _ctrl(costs: CostModel, payload: int) -> float:
    """One scheduler control transfer (always remote: the scheduler
    has its own node).  Mirrors ``NetworkService.transfer_cost``."""
    packets = max(1, math.ceil(payload / costs.packet_size))
    return (packets * (costs.packet_protocol_send + costs.control_message
                       + costs.packet_protocol_receive)
            + payload / costs.ring_bandwidth)


def _phase_overhead(costs: CostModel, n_producers: int, n_consumers: int,
                    split_table_bytes: int) -> float:
    """Serial scheduler time wrapped around one ``execute_phase``."""
    start_producer = costs.operator_startup + _ctrl(
        costs, max(64, split_table_bytes))
    start_consumer = costs.operator_startup + _ctrl(costs, 64)
    done = _ctrl(costs, 64)
    return (n_producers * start_producer + n_consumers * start_consumer
            + (n_producers + n_consumers) * done)


def _packets(n_tuples: float, n_streams: int, per_packet: int) -> float:
    """Data packets for ``n_tuples`` spread over ``n_streams``
    (producer, destination[, bucket]) buffers flushed at capacity
    ``per_packet`` — partial-packet rounding happens per stream."""
    if n_tuples <= 0 or n_streams <= 0:
        return 0.0
    # A stream with fewer tuples than its capacity still flushes one
    # packet, but a packet is never emptier than one tuple.
    return min(math.ceil(n_tuples),
               n_streams * math.ceil(n_tuples / n_streams / per_packet))


def _pages(n_tuples: float, per_page: int) -> float:
    if n_tuples <= 0:
        return 0.0
    return math.ceil(n_tuples / per_page)


# --------------------------------------------------------------------------
# One pipelined phase: per-node-class load aggregation
# --------------------------------------------------------------------------

@dataclasses.dataclass
class _Load:
    """Aggregated per-node demand of one phase (uniform assumption).

    ``prod_*`` quantities are per disk node (the scan side);
    ``site_cpu`` is per join site; ``cons_cpu``/``cons_disk`` per disk
    node of consumer-side work (writers).  In the local configuration
    join sites *are* the disk nodes, so the classes merge.
    """

    prod_cpu: float = 0.0
    prod_disk: float = 0.0
    site_cpu: float = 0.0
    cons_cpu: float = 0.0
    cons_disk: float = 0.0
    ring: float = 0.0

    def bracket(self, local: bool, overhead: float
                ) -> tuple[float, float]:
        if local:
            node_cpu = self.prod_cpu + self.site_cpu + self.cons_cpu
            node_disk = self.prod_disk + self.cons_disk
        else:
            node_cpu = self.prod_cpu + self.cons_cpu
            node_disk = self.prod_disk + self.cons_disk
        # The scan process alternates page reads with routing CPU, so
        # a producer's own chain is serial; everything else overlaps.
        serial_chain = self.prod_disk + self.prod_cpu
        lower = max(serial_chain, node_cpu, node_disk, self.ring,
                    0.0 if local else self.site_cpu)
        upper = max(lower, node_cpu + node_disk)
        return overhead + lower, overhead + upper


def _estimate(name: str, load: _Load, local: bool,
              overhead: float) -> PhaseEstimate:
    lower, upper = load.bracket(local, overhead)
    return PhaseEstimate(name=name, predicted=(lower + upper) / 2.0,
                         lower=lower, upper=upper)


def _sum_loads(*loads: _Load) -> _Load:
    total = _Load()
    for load in loads:
        total.prod_cpu += load.prod_cpu
        total.prod_disk += load.prod_disk
        total.site_cpu += load.site_cpu
        total.cons_cpu += load.cons_cpu
        total.cons_disk += load.cons_disk
        total.ring += load.ring
    return total


# --------------------------------------------------------------------------
# The model
# --------------------------------------------------------------------------

class AnalyticModel:
    """Per-phase response-time predictions for one join execution."""

    def __init__(self, costs: CostModel, num_disks: int,
                 num_join_sites: int, configuration: str,
                 workload: Workload) -> None:
        self.costs = costs
        self.num_disks = num_disks
        self.num_sites = num_join_sites
        self.local = configuration == "local"
        self.w = workload
        self.tpp_r = costs.tuples_per_page(workload.inner_bytes)
        self.tpp_s = costs.tuples_per_page(workload.outer_bytes)
        self.tpk_r = costs.tuples_per_packet(workload.inner_bytes)
        self.tpk_s = costs.tuples_per_packet(workload.outer_bytes)
        self.result_bytes = workload.inner_bytes + workload.outer_bytes
        self.tpp_res = costs.tuples_per_page(self.result_bytes)
        self.tpk_res = costs.tuples_per_packet(self.result_bytes)

    # -- shared building blocks -------------------------------------------

    def _send_cpu(self, packets: float, local_fraction: float) -> float:
        """Producer-side protocol CPU for ``packets`` data packets of
        which ``local_fraction`` short-circuit."""
        costs = self.costs
        return packets * (local_fraction * costs.packet_shortcircuit
                          + (1.0 - local_fraction)
                          * costs.packet_protocol_send)

    def _recv_cpu(self, packets: float, local_fraction: float) -> float:
        costs = self.costs
        return packets * (local_fraction * costs.packet_shortcircuit
                          + (1.0 - local_fraction)
                          * costs.packet_protocol_receive)

    def _eos(self, n_consumers: int, self_among: bool) -> float:
        """Sender CPU for one router's close (EOS to every consumer)."""
        costs = self.costs
        if self_among and n_consumers > 0:
            return (costs.packet_shortcircuit
                    + (n_consumers - 1) * costs.packet_protocol_send)
        return n_consumers * costs.packet_protocol_send

    def _wire(self, packets: float, payload: float,
              local_fraction: float) -> float:
        """Ring time of ``packets`` remote packets of ``payload``
        bytes each."""
        return (packets * (1.0 - local_fraction) * payload
                / self.costs.ring_bandwidth)

    def _spool_hosts(self) -> int:
        """Distinct overflow-host disk nodes (one S'/R' writer each)."""
        return (self.num_sites if self.local
                else min(self.num_sites, self.num_disks))

    # -- run_round phases (simple / grace buckets / hybrid buckets) -------

    def _round_routing(self, aligned: bool) -> tuple[int, float]:
        """(streams per producer, local fraction) of a joining-table
        route: aligned HPJA tuples all land on one site slot."""
        J = self.num_sites
        if aligned and J == self.num_disks:
            return 1, (1.0 if self.local else 0.0)
        return J, ((1.0 / J) if self.local else 0.0)

    def round_build(self, label: str, n_build: float,
                    aligned: bool) -> PhaseEstimate:
        """The build half of one hash-join round: D scanners stream
        ``n_build`` R tuples into J site hash tables."""
        overhead = _phase_overhead(
            self.costs, self.num_disks,
            self.num_sites + self._spool_hosts(),
            self.num_sites * SPLIT_ENTRY_BYTES)
        return _estimate(f"{label}.build",
                         self._round_build_load(n_build, aligned),
                         self.local, overhead)

    def _round_build_load(self, n_build: float, aligned: bool) -> _Load:
        costs, D, J = self.costs, self.num_disks, self.num_sites
        local = self.local
        load = _Load()
        n_prod = n_build / D
        load.prod_disk = _pages(n_prod, self.tpp_r) \
            * costs.disk_page_read_sequential
        streams, data_local = self._round_routing(aligned)
        pkts_prod = _packets(n_prod, streams, self.tpk_r)
        load.prod_cpu = (
            n_prod * (costs.tuple_scan + costs.tuple_hash
                      + costs.tuple_move)
            + self._send_cpu(pkts_prod, data_local)
            + self._eos(J, self_among=local))
        n_site = n_build / J
        pkts_site = pkts_prod * D / J
        eos_local = (1.0 / D) if local else 0.0
        load.site_cpu = (
            self._recv_cpu(pkts_site, data_local)
            + n_site * (costs.tuple_receive + costs.histogram_update
                        + costs.tuple_build)
            + self._recv_cpu(D, eos_local)         # EOS from D scanners
            + self._eos(1, self_among=local))       # own R' router close
        load.cons_cpu = self._recv_cpu(
            1.0, 1.0 if local else 0.0)             # R' writer EOS drain
        payload = min(self.tpk_r * self.w.inner_bytes, costs.packet_size)
        load.ring = self._wire(pkts_prod * D, payload, data_local)
        return load

    def round_probe(self, label: str, n_probe: float, n_match: float,
                    aligned: bool) -> PhaseEstimate:
        """The probe half: D scanners stream ``n_probe`` S tuples to J
        probers, which emit ``n_match`` results round-robin to the D
        result-store writers."""
        overhead = _phase_overhead(
            self.costs, self.num_disks,
            self.num_sites + self._spool_hosts() + self.num_disks,
            self.num_sites * SPLIT_ENTRY_BYTES)
        return _estimate(f"{label}.probe",
                         self._round_probe_load(n_probe, n_match,
                                                aligned),
                         self.local, overhead)

    def _round_probe_load(self, n_probe: float, n_match: float,
                          aligned: bool) -> _Load:
        costs, D, J = self.costs, self.num_disks, self.num_sites
        local = self.local
        hosts = self._spool_hosts()
        load = _Load()
        n_prod = n_probe / D
        load.prod_disk = _pages(n_prod, self.tpp_s) \
            * costs.disk_page_read_sequential
        streams, data_local = self._round_routing(aligned)
        pkts_prod = _packets(n_prod, streams, self.tpk_s)
        load.prod_cpu = (
            n_prod * (costs.tuple_scan + costs.tuple_hash
                      + costs.tuple_move)
            + self._send_cpu(pkts_prod, data_local)
            + self._eos(J, self_among=local)        # probe router
            + self._eos(hosts, self_among=local))   # spool router (empty)
        n_site = n_probe / J
        match_site = n_match / J
        pkts_site = pkts_prod * D / J
        eos_local = (1.0 / D) if local else 0.0
        store_pkts = _packets(match_site, D, self.tpk_res)
        store_local = (1.0 / D) if local else 0.0
        load.site_cpu = (
            self._recv_cpu(pkts_site, data_local)
            + n_site * (costs.tuple_receive + costs.tuple_probe)
            + match_site * (costs.tuple_result + costs.tuple_move)
            + self._send_cpu(store_pkts, store_local)
            + self._recv_cpu(D, eos_local)          # EOS from scanners
            + self._eos(D, self_among=local))       # store router close
        # Store writers and S' writers (disk nodes).
        n_store = n_match / D
        store_in = store_pkts * J / D
        store_recv_local = (1.0 / J) if local else 0.0
        load.cons_cpu = (
            self._recv_cpu(store_in, store_recv_local)
            + n_store * costs.tuple_store
            + self._recv_cpu(J, store_recv_local)   # store EOS
            + self._recv_cpu(D, eos_local))         # spool EOS drain
        load.cons_disk = (n_store / self.tpp_res) \
            * costs.disk_page_write_sequential
        payload_s = min(self.tpk_s * self.w.outer_bytes, costs.packet_size)
        payload_res = min(self.tpk_res * self.result_bytes,
                          costs.packet_size)
        load.ring = (self._wire(pkts_prod * D, payload_s, data_local)
                     + self._wire(store_pkts * J, payload_res,
                                  store_local))
        return load

    def collect_state_gap(self, n_broadcast: int) -> float:
        """The serial cutoff/filter control round between build and
        probe (no bit filters in scope, so 32/64-byte payloads)."""
        return (self.num_sites * _ctrl(self.costs, 32)
                + n_broadcast * _ctrl(self.costs, 64))

    # -- bucket-forming phases (grace / sort-merge partition) -------------

    def forming(self, name: str, n_tuples: float, tuple_bytes: int,
                num_buckets: int, split_table_bytes: int,
                aligned: bool) -> PhaseEstimate:
        """Scan a relation and redistribute it into per-disk temp
        files (``num_buckets`` files per disk for Grace, one for the
        sort-merge partition)."""
        overhead = _phase_overhead(self.costs, self.num_disks,
                                   self.num_disks, split_table_bytes)
        return _estimate(name,
                         self._forming_load(n_tuples, tuple_bytes,
                                            num_buckets, aligned),
                         True, overhead)

    def _forming_load(self, n_tuples: float, tuple_bytes: int,
                      num_buckets: int, aligned: bool) -> _Load:
        costs, D = self.costs, self.num_disks
        tpp = costs.tuples_per_page(tuple_bytes)
        tpk = costs.tuples_per_packet(tuple_bytes)
        load = _Load()
        n_prod = n_tuples / D
        load.prod_disk = _pages(n_prod, tpp) \
            * costs.disk_page_read_sequential
        if aligned:
            streams, data_local = num_buckets, 1.0
        else:
            streams, data_local = D * num_buckets, 1.0 / D
        pkts_prod = _packets(n_prod, streams, tpk)
        load.prod_cpu = (
            n_prod * (costs.tuple_scan + costs.tuple_hash
                      + costs.tuple_move)
            + self._send_cpu(pkts_prod, data_local)
            + self._eos(D, self_among=True))
        n_cons = n_tuples / D
        load.cons_cpu = (
            self._recv_cpu(pkts_prod, data_local)
            + n_cons * costs.tuple_store
            + self._recv_cpu(D, 1.0 / D))           # EOS from D scanners
        load.cons_disk = (num_buckets
                          * _pages(n_cons / num_buckets, tpp)
                          * costs.disk_page_write_sequential)
        payload = min(tpk * tuple_bytes, costs.packet_size)
        load.ring = self._wire(pkts_prod * D, payload, data_local)
        return load

    # -- sort-merge specific phases ---------------------------------------

    def sort_phase(self, name: str, n_tuples: float,
                   tuple_bytes: int) -> PhaseEstimate:
        """Parallel local external sorts — near-exact: each node's
        sort is one serial read/CPU/write chain from the WiSS plan."""
        from repro.storage.sort import plan_external_sort
        costs, D = self.costs, self.num_disks
        overhead = _phase_overhead(costs, D, 0, 0)
        plan = plan_external_sort(
            max(0, round(n_tuples / D)), tuple_bytes,
            self.w.aggregate_memory // D, costs)
        serial = (plan.pages_read * costs.disk_page_read_sequential
                  + plan.pages_written * costs.disk_page_write_sequential
                  + plan.cpu_seconds(costs))
        return PhaseEstimate(name=name, predicted=overhead + serial,
                             lower=overhead + serial * 0.9,
                             upper=overhead + serial * 1.1)

    def merge_phase(self, n_match: float) -> PhaseEstimate:
        """The local merge join: stream both sorted files, back up
        over duplicates, route results round-robin to the stores."""
        costs, D = self.costs, self.num_disks
        overhead = _phase_overhead(costs, D, D, D * SPLIT_ENTRY_BYTES)
        load = _Load()
        n_r = self.w.n_inner / D
        # The merge stops reading S once its value passes the inner's
        # high key (§4.4) — only the overlapping prefix is consumed.
        n_s = self.w.n_outer * self.w.merge_overlap / D
        match = n_match / D
        load.prod_disk = (
            (_pages(n_s, self.tpp_s) + _pages(n_r, self.tpp_r))
            * costs.disk_page_read_sequential)
        store_pkts = _packets(match, D, self.tpk_res)
        load.prod_cpu = (
            n_s * (costs.tuple_scan + costs.sort_compare)
            + n_r * (costs.sort_compare + costs.sort_tuple_overhead)
            + match * (costs.sort_compare + costs.tuple_result
                       + costs.tuple_move)
            + self._send_cpu(store_pkts, 1.0 / D)
            + self._eos(D, self_among=True))
        load.cons_cpu = (
            self._recv_cpu(store_pkts, 1.0 / D)
            + match * costs.tuple_store
            + self._recv_cpu(D, 1.0 / D))
        load.cons_disk = (match / self.tpp_res) \
            * costs.disk_page_write_sequential
        payload = min(self.tpk_res * self.result_bytes, costs.packet_size)
        load.ring = self._wire(store_pkts * D, payload, 1.0 / D)
        return _estimate("sort-merge.merge", load, True, overhead)

    # -- per-algorithm phase sequences -------------------------------------

    def predict(self, algorithm: str) -> list[PhaseEstimate]:
        """The phase-estimate sequence for one algorithm (phase names
        match the simulator's ``JoinResult.phases``)."""
        if algorithm == "simple":
            return self._predict_simple()
        if algorithm == "grace":
            return self._predict_grace()
        if algorithm == "hybrid":
            return self._predict_hybrid()
        if algorithm == "sort-merge":
            return self._predict_sort_merge()
        raise ValueError(f"unknown algorithm {algorithm!r}")

    def response_time(self, algorithm: str) -> PhaseEstimate:
        """Whole-query bracket: phase sums plus the inter-phase
        control rounds and the result-file close."""
        phases = self.predict(algorithm)
        gaps = self._gap_seconds(algorithm)
        finish = self.num_disks * self.costs.disk_page_write_sequential
        lower = sum(p.lower for p in phases) + gaps + finish
        upper = sum(p.upper for p in phases) + gaps + finish
        return PhaseEstimate(name="total", predicted=(lower + upper) / 2,
                             lower=lower, upper=upper)

    def _num_buckets(self, algorithm: str) -> int:
        from repro.core.planner import BucketPolicy, plan_buckets
        plan = plan_buckets(
            algorithm, self.w.inner_total_bytes, self.w.aggregate_memory,
            num_disks=self.num_disks, num_join_nodes=self.num_sites,
            policy=BucketPolicy(self.w.bucket_policy),
            override=self.w.num_buckets_override)
        return plan.num_buckets

    def _predict_simple(self) -> list[PhaseEstimate]:
        w = self.w
        return [
            self.round_build("simple", w.n_inner, w.inner_aligned),
            self.round_probe("simple", w.n_outer, w.n_result,
                             w.outer_aligned),
        ]

    def _predict_grace(self) -> list[PhaseEstimate]:
        w, D = self.w, self.num_disks
        B = self._num_buckets("grace")
        table_bytes = B * D * SPLIT_ENTRY_BYTES
        phases = [
            self.forming("grace.formR", w.n_inner, w.inner_bytes,
                         B, table_bytes, w.inner_aligned),
            self.forming("grace.formS", w.n_outer, w.outer_bytes,
                         B, table_bytes, w.outer_aligned),
        ]
        for bucket in range(B):
            # Bucket files are declustered by the level-0 routing hash
            # during forming, so bucket rounds are always aligned.
            phases.append(self.round_build(
                f"grace.b{bucket}", w.n_inner / B, True))
            phases.append(self.round_probe(
                f"grace.b{bucket}", w.n_outer / B, w.n_result / B,
                True))
        return phases

    def _predict_hybrid(self) -> list[PhaseEstimate]:
        w, D, J = self.w, self.num_disks, self.num_sites
        costs = self.costs
        B = self._num_buckets("hybrid")
        entries = J + D * (B - 1)
        f0 = J / entries
        table_bytes = entries * SPLIT_ENTRY_BYTES
        hosts = self._spool_hosts()
        spill = D if B > 1 else 0
        # The forming phases combine round 0's build/probe half with
        # the redistribution of the on-disk buckets: one shared scan,
        # two (three) routers, union of the consumer sets.  Summing
        # the per-node loads models that exactly — each tuple takes
        # one of the two paths.
        load_r = self._round_build_load(w.n_inner * f0, w.inner_aligned)
        load_s = self._round_probe_load(w.n_outer * f0,
                                        w.n_result * f0,
                                        w.outer_aligned)
        if B > 1:
            load_r = _sum_loads(load_r, self._forming_load(
                w.n_inner * (1 - f0), w.inner_bytes, B - 1,
                w.inner_aligned and J == D))
            load_s = _sum_loads(load_s, self._forming_load(
                w.n_outer * (1 - f0), w.outer_bytes, B - 1,
                w.outer_aligned and J == D))
        phases = [
            _estimate("hybrid.formR", load_r, self.local,
                      _phase_overhead(costs, D, J + hosts + spill,
                                      table_bytes)),
            _estimate("hybrid.formS", load_s, self.local,
                      _phase_overhead(costs, D, J + hosts + D + spill,
                                      table_bytes)),
        ]
        per_bucket_r = w.n_inner * (1 - f0) / max(1, B - 1)
        per_bucket_s = w.n_outer * (1 - f0) / max(1, B - 1)
        per_bucket_m = w.n_result * (1 - f0) / max(1, B - 1)
        for bucket in range(1, B):
            # Bucket files are declustered by the level-0 routing hash
            # during forming, so bucket rounds are always aligned.
            phases.append(self.round_build(
                f"hybrid.b{bucket}", per_bucket_r, True))
            phases.append(self.round_probe(
                f"hybrid.b{bucket}", per_bucket_s, per_bucket_m, True))
        return phases

    def _predict_sort_merge(self) -> list[PhaseEstimate]:
        w, D = self.w, self.num_disks
        return [
            self.forming("sort-merge.partR", w.n_inner, w.inner_bytes,
                         1, D * SPLIT_ENTRY_BYTES, w.inner_aligned),
            self.sort_phase("sort-merge.sortR", w.n_inner,
                            w.inner_bytes),
            self.forming("sort-merge.partS", w.n_outer, w.outer_bytes,
                         1, D * SPLIT_ENTRY_BYTES, w.outer_aligned),
            self.sort_phase("sort-merge.sortS", w.n_outer,
                            w.outer_bytes),
            self.merge_phase(w.n_result),
        ]

    def _gap_seconds(self, algorithm: str) -> float:
        """Serial control time between phases (cutoff collection
        rounds) — one per hash-join round."""
        D = self.num_disks
        if algorithm == "simple":
            rounds = 1
        elif algorithm == "grace":
            rounds = self._num_buckets("grace")
        elif algorithm == "hybrid":
            rounds = self._num_buckets("hybrid")
        else:
            return 0.0
        return rounds * self.collect_state_gap(D)


# --------------------------------------------------------------------------
# Assessment of a simulated result
# --------------------------------------------------------------------------

def model_for(machine: "GammaMachine", db: "WisconsinDatabase",
              result: "JoinResult") -> AnalyticModel | None:
    """An :class:`AnalyticModel` for a finished join, or ``None`` when
    the execution is outside the model's scope."""
    if machine.topology_name != "token-ring":
        # The ring lower bound treats the interconnect as one shared
        # medium; the routed topologies carry disjoint flows on
        # parallel links, so that bound (and the _ctrl wire terms)
        # systematically overestimates their contention.  Explicitly
        # out of scope rather than wrongly banded.
        return None
    spec = result.spec
    if (spec.inner_predicate is not None
            or spec.outer_predicate is not None
            or spec.resolved_filter_policy().active):
        return None
    if result.overflow_events or result.counters.get(
            "outer_tuples_spooled"):
        return None
    config = spec.configuration
    num_sites = (machine.num_disk_nodes if config == "local"
                 else len(machine.diskless_nodes))
    inner = db.inner
    outer = db.outer
    merge_overlap = 1.0
    if result.algorithm == "sort-merge":
        # High-key catalog statistic: the merge never reads S past the
        # inner relation's maximum join-key value.
        r_idx = inner.schema.index_of(spec.inner_attribute)
        s_idx = outer.schema.index_of(spec.outer_attribute)
        r_max = max((row[r_idx] for frag in inner.fragments
                     for row in frag), default=None)
        if r_max is None or not outer.cardinality:
            merge_overlap = 0.0
        else:
            below = sum(1 for frag in outer.fragments
                        for row in frag if row[s_idx] <= r_max)
            merge_overlap = below / outer.cardinality
    workload = Workload(
        n_inner=inner.cardinality,
        inner_bytes=inner.schema.tuple_bytes,
        n_outer=outer.cardinality,
        outer_bytes=outer.schema.tuple_bytes,
        n_result=result.result_tuples,
        inner_total_bytes=inner.total_bytes,
        aggregate_memory=spec.aggregate_memory(inner.total_bytes),
        bucket_policy=spec.bucket_policy,
        num_buckets_override=spec.num_buckets,
        # The loader's declustering hash is the "avalanche" family, so
        # HPJA alignment needs the routing hash to be the same family.
        inner_aligned=(spec.hash_family == "avalanche"
                       and inner.is_hash_partitioned_on(
                           spec.inner_attribute)),
        outer_aligned=(spec.hash_family == "avalanche"
                       and outer.is_hash_partitioned_on(
                           spec.outer_attribute)),
        merge_overlap=merge_overlap,
    )
    return AnalyticModel(machine.costs, machine.num_disk_nodes,
                         num_sites, config, workload)


def assess(machine: "GammaMachine", db: "WisconsinDatabase",
           result: "JoinResult", *, rel_tol: float = REL_TOLERANCE,
           abs_tol: float = ABS_TOLERANCE,
           check: bool = False) -> dict | None:
    """Compare a simulated result against the analytic predictions.

    Returns a picklable report: per-phase simulated vs predicted
    durations with relative deltas, plus the whole-query comparison.
    ``None`` when the execution is outside the model's scope.  With
    ``check=True`` a phase outside the tolerance band raises
    :class:`ConformanceError`.
    """
    model = model_for(machine, db, result)
    if model is None:
        return None
    estimates = model.predict(result.algorithm)
    simulated = {}
    for stat in result.phases:
        simulated[stat.name] = (simulated.get(stat.name, 0.0)
                                + stat.duration)
    phases = []
    all_within = True
    for est in estimates:
        sim = simulated.get(est.name)
        row: dict[str, typing.Any] = {
            "phase": est.name,
            "predicted": est.predicted,
            "lower": est.lower,
            "upper": est.upper,
            "simulated": sim,
        }
        if sim is None:
            row["within"] = False
            all_within = False
            if check:
                raise ConformanceError(
                    "simulator produced no phase matching the analytic "
                    "model's phase sequence",
                    invariant="analytic", phase=est.name,
                    deltas={"expected_phases": [e.name
                                                for e in estimates],
                            "simulated_phases": sorted(simulated)})
        else:
            band = rel_tol * est.predicted + abs_tol
            delta = sim - est.predicted
            row["delta"] = delta
            row["relative"] = (delta / est.predicted
                               if est.predicted else 0.0)
            row["within"] = abs(delta) <= band
            if not row["within"]:
                all_within = False
                if check:
                    raise ConformanceError(
                        "simulated phase duration falls outside the "
                        "analytic tolerance band",
                        invariant="analytic", phase=est.name,
                        deltas={"simulated": sim,
                                "predicted": est.predicted,
                                "band": band})
        phases.append(row)
    total = model.response_time(result.algorithm)
    total_band = rel_tol * total.predicted + abs_tol
    total_within = (abs(result.response_time - total.predicted)
                    <= total_band)
    if not total_within:
        all_within = False
        if check:
            raise ConformanceError(
                "simulated response time falls outside the analytic "
                "tolerance band",
                invariant="analytic", phase="total",
                deltas={"simulated": result.response_time,
                        "predicted": total.predicted,
                        "band": total_band})
    return {
        "algorithm": result.algorithm,
        "rel_tol": rel_tol,
        "abs_tol": abs_tol,
        "phases": phases,
        "total_simulated": result.response_time,
        "total_predicted": total.predicted,
        "total_lower": total.lower,
        "total_upper": total.upper,
        "within_tolerance": all_within,
    }
