"""Differential mode-matrix harness (``repro.verify.matrix``).

The simulator has three performance planes that must not change any
simulated result: the event scheduler (``REPRO_SCHED``:
calendar queue vs classic binary heap), the vectorized page-batch
data plane (``REPRO_VECTOR``) and the event-loop urgent fastpath
(``REPRO_FASTPATH``) and the columnar relation storage
(``REPRO_COLUMNAR``).  This module runs one workload through the full
sixteen-combination cube — each on a fresh machine, with the
conformance monitor (``REPRO_VERIFY=1``) active — and asserts that
every mode produces **bit-identical** response times and per-phase
timings.  Any
invariant violation inside a combo surfaces as a
:class:`~repro.verify.ConformanceError` from that run; any divergence
*between* combos raises one from the harness itself.

Run as a CLI over the Figure 5 workload::

    REPRO_VERIFY=1 python -m repro.verify.matrix --scale 0.05 --out out/verify

which also writes ``analytic_deltas.json`` — the per-phase
analytic-vs-simulated comparison from :mod:`repro.verify.analytic` —
as a machine-readable conformance artifact (published by the CI
``verify`` job).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import pathlib
import typing

from repro.verify import ConformanceError

#: (sched, vector, fastpath, columnar) combinations — the full cube,
#: the all-defaults reference combo first.
MODES: tuple[tuple[str, int, int, int], ...] = tuple(
    (sched, vector, fastpath, columnar)
    for sched in ("calendar", "heap")
    for vector in (1, 0)
    for fastpath in (1, 0)
    for columnar in (1, 0))


@contextlib.contextmanager
def mode_env(sched: str, vector: int, fastpath: int,
             verify: bool = True,
             columnar: int | None = None,
             compiled: str | None = None) -> typing.Iterator[None]:
    """Pin the scheduler/data-plane/fastpath/verify environment for
    one run.

    The flags are read at machine- and driver-construction time, so a
    fresh machine built inside this context runs fully in the
    requested mode.  ``columnar`` additionally pins
    ``REPRO_COLUMNAR`` — note the relation *representation* is decided
    when a database is generated, so harnesses convert the database
    per combo (:meth:`WisconsinDatabase.with_representation`) rather
    than relying on the flag alone.  ``compiled`` pins
    ``REPRO_COMPILED`` — and, because backend activation is lazy and
    process-global, also re-activates the kernel backend on entry and
    restores the ambient selection on exit.
    """
    desired = {
        "REPRO_SCHED": sched,
        "REPRO_VECTOR": str(vector),
        "REPRO_FASTPATH": str(fastpath),
        "REPRO_VERIFY": "1" if verify else "0",
    }
    if columnar is not None:
        desired["REPRO_COLUMNAR"] = str(columnar)
    if compiled is not None:
        desired["REPRO_COMPILED"] = compiled
    saved = {key: os.environ.get(key) for key in desired}
    os.environ.update(desired)
    if compiled is not None:
        from repro.core import backend
        backend.activate(compiled)
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        if compiled is not None:
            backend.activate()


def _phase_signature(result: typing.Any) -> list[tuple[str, str, str]]:
    """Bit-exact phase timings (repr preserves every float bit)."""
    return [(stat.name, repr(stat.start), repr(stat.end))
            for stat in result.phases]


def run_mode_matrix(config: typing.Any, db: typing.Any, algorithm: str,
                    memory_ratio: float, configuration: str = "local",
                    **spec_kwargs: typing.Any) -> dict:
    """One workload through the SCHED × VECTOR × FASTPATH × COLUMNAR
    cube.

    Every combo runs on a fresh machine with the conformance monitor
    enabled — the columnar combos against the database converted to
    page fragments, the others against tuple-list fragments — and the
    harness then asserts bit-identical response times and phase
    timings across all sixteen. Returns a picklable report with the
    reference result attached under ``"result"``.
    """
    from repro.experiments.runner import run_sweep_point

    from repro.core import backend

    runs = []
    for sched, vector, fastpath, columnar in MODES:
        mode_db = (db if db is None
                   else db.with_representation(bool(columnar)))
        with mode_env(sched, vector, fastpath, verify=True,
                      columnar=columnar):
            point = run_sweep_point(config, mode_db, algorithm,
                                    memory_ratio,
                                    configuration=configuration,
                                    **spec_kwargs)
        runs.append(((sched, vector, fastpath, columnar), point))

    # REPRO_COMPILED axis, availability-gated: when a compiled engine
    # loads on this host, rerun a representative subset of the cube
    # with the backend pinned both ways (the full 16 x 2 cube would
    # double the harness for an axis whose kernels are already
    # property-tested element-wise).  The subset covers the kernels'
    # consumers: reference combo (vector + columnar + calendar) and
    # the heap/tuple-list combo.
    compiled_modes: list[str] = []
    if any(status == "ok"
           for status in backend.available_engines().values()):
        compiled_modes = ["0", "1"]
        for compiled in compiled_modes:
            for sched, vector, fastpath, columnar in (
                    MODES[0], ("heap", 1, 1, 0)):
                mode_db = (db if db is None
                           else db.with_representation(bool(columnar)))
                with mode_env(sched, vector, fastpath, verify=True,
                              columnar=columnar, compiled=compiled):
                    point = run_sweep_point(config, mode_db, algorithm,
                                            memory_ratio,
                                            configuration=configuration,
                                            **spec_kwargs)
                runs.append(((sched, vector, fastpath, columnar),
                             point))

    (_, reference), *rest = runs
    ref_sig = _phase_signature(reference.result)
    ref_time = repr(reference.result.response_time)
    for (sched, vector, fastpath, columnar), point in rest:
        time = repr(point.result.response_time)
        if time != ref_time:
            raise ConformanceError(
                f"{algorithm} response time diverges across modes: "
                f"sched={sched} vector={vector} fastpath={fastpath} "
                f"columnar={columnar} "
                f"produced {time}, reference {ref_time}",
                invariant="mode-matrix",
                deltas={"mode": [sched, vector, fastpath, columnar],
                        "response_time": time,
                        "reference": ref_time})
        sig = _phase_signature(point.result)
        if sig != ref_sig:
            diverging = [
                (a, b) for a, b in zip(ref_sig, sig) if a != b
            ] or [(ref_sig[len(sig):], sig[len(ref_sig):])]
            raise ConformanceError(
                f"{algorithm} phase timings diverge across modes "
                f"(sched={sched} vector={vector} fastpath={fastpath} "
                f"columnar={columnar})",
                invariant="mode-matrix",
                deltas={"mode": [sched, vector, fastpath, columnar],
                        "diverging_phases": diverging[:4]})
    return {
        "algorithm": algorithm,
        "memory_ratio": memory_ratio,
        "configuration": configuration,
        "response_time": reference.result.response_time,
        # The base cube only; the compiled-axis reruns share mode
        # tuples with it (they are the same combos pinned 0/1) and
        # are reported via "compiled_modes".
        "modes": [list(mode) for mode, _ in runs[:len(MODES)]],
        "compiled_modes": compiled_modes,
        "result": reference.result,
    }


# --------------------------------------------------------------------------
# CLI: Figure 5 workload across the matrix, analytic deltas as artifact
# --------------------------------------------------------------------------

def run_figure5_matrix(scale: float,
                       ratios: typing.Sequence[float] | None = None,
                       algorithms: typing.Sequence[str] | None = None,
                       ) -> list[dict]:
    """The Figure 5 workload (local HPJA joinABprime) through the
    matrix: every algorithm × memory ratio, all sixteen mode combos,
    all invariants, plus the analytic assessment of the reference
    run."""
    from repro.experiments.config import (
        PAPER_MEMORY_RATIOS,
        ExperimentConfig,
    )
    from repro.experiments.runner import build_machine, sweep_database
    from repro.verify.analytic import assess

    config = ExperimentConfig(scale=scale)
    db = sweep_database(config, hpja=True)
    rows: list[dict] = []
    for algorithm in (algorithms
                      or ("simple", "grace", "hybrid", "sort-merge")):
        for ratio in (ratios or PAPER_MEMORY_RATIOS):
            if algorithm == "simple" and ratio < 1.0:
                # Figure 5 runs Simple only at full memory; reduced
                # ratios recurse through overflow resolution and are
                # exercised by the hypothesis suite instead.
                continue
            outcome = run_mode_matrix(config, db, algorithm, ratio)
            result = outcome.pop("result")
            analytic = assess(build_machine(config, "local"), db, result,
                              check=True)
            outcome["analytic"] = analytic
            outcome["invariants"] = "pass"
            rows.append(outcome)
    return rows


def main(argv: typing.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.matrix",
        description="Differential REPRO_SCHED x REPRO_VECTOR x "
                    "REPRO_FASTPATH x REPRO_COLUMNAR conformance "
                    "matrix over the Figure 5 workload.")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="Wisconsin scale factor (default 0.05)")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="directory for analytic_deltas.json")
    parser.add_argument("--ratios", type=float, nargs="*", default=None,
                        help="memory ratios (default: the paper's)")
    parser.add_argument("--algorithms", nargs="*", default=None,
                        help="algorithms (default: all four)")
    args = parser.parse_args(argv)

    rows = run_figure5_matrix(args.scale, ratios=args.ratios,
                              algorithms=args.algorithms)
    for row in rows:
        analytic = row["analytic"]
        band = ("n/a (out of model scope)" if analytic is None else
                f"within {analytic['rel_tol']:.0%}+{analytic['abs_tol']}s")
        print(f"{row['algorithm']:>10} ratio={row['memory_ratio']:.3f} "
              f"t={row['response_time']:10.3f}s modes={len(row['modes'])}"
              f" invariants=pass analytic={band}")
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        artifact = args.out / "analytic_deltas.json"
        artifact.write_text(json.dumps(
            {"scale": args.scale, "modes": [list(m) for m in MODES],
             "points": rows}, indent=2, sort_keys=True))
        print(f"wrote {artifact}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
