"""Runtime conformance checking for the simulator (``REPRO_VERIFY=1``).

After three PRs of hot-path rewriting (kernel fast paths, vectorized
data plane) the only safety net was bit-parity against golden figures.
This package adds an *independent* check of what the numbers mean,
the way Schneider & DeWitt validate their measurements against the
Appendix-A analytic model:

* :mod:`repro.verify.invariants` — a :class:`ConformanceMonitor`
  hooked into the machine, operators and join drivers.  It keeps its
  own ledgers (tuples scanned/routed/received, pages read/written,
  packets sent/delivered) and cross-checks them against the engine's
  counters when the simulation drains.
* :mod:`repro.verify.analytic` — an Appendix-A-style cost model that
  predicts per-phase response times for all four join algorithms from
  catalog statistics and :mod:`repro.costs` constants and asserts the
  simulated result lands within a documented tolerance band.
* :mod:`repro.verify.matrix` — a differential harness running the
  same workload through every ``REPRO_VECTOR`` x ``REPRO_FASTPATH``
  combination and asserting bit-identical simulated times plus all
  invariants in each mode.

Everything is gated by the ``REPRO_VERIFY`` environment variable
(default off): with the gate closed no monitor is constructed and the
hot paths see only a ``monitor is None`` test, so the default
configuration pays nothing.

This module deliberately imports nothing from the rest of the package
at import time — :mod:`repro.sim.engine` and
:mod:`repro.engine.machine` import it to read the gate.
"""

from __future__ import annotations

import os
import typing


def verify_enabled() -> bool:
    """Is runtime conformance checking requested? (``REPRO_VERIFY=1``)"""
    return os.environ.get("REPRO_VERIFY", "0") not in ("", "0")


class ConformanceError(AssertionError):
    """An invariant the simulation promises to uphold was violated.

    Carries enough structure for a report: the invariant's short name,
    the node and phase it was detected at (when attributable), and the
    counter deltas that disagreed.
    """

    def __init__(self, message: str, *,
                 invariant: str | None = None,
                 node: int | str | None = None,
                 phase: str | None = None,
                 deltas: typing.Mapping[str, typing.Any] | None = None,
                 ) -> None:
        self.invariant = invariant
        self.node = node
        self.phase = phase
        self.deltas = dict(deltas) if deltas else {}
        parts = [message]
        if invariant is not None:
            parts.insert(0, f"[{invariant}]")
        if node is not None:
            parts.append(f"node={node}")
        if phase is not None:
            parts.append(f"phase={phase}")
        if self.deltas:
            rendered = ", ".join(
                f"{key}={value!r}" for key, value in self.deltas.items())
            parts.append(f"deltas: {rendered}")
        super().__init__(" ".join(parts))


__all__ = ["ConformanceError", "verify_enabled"]
