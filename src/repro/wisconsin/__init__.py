"""The Wisconsin benchmark workload (Bitton, DeWitt & Turbyfill 1983).

The paper's benchmark relations: sixteen attributes per tuple —
thirteen 4-byte integers and three 52-byte strings, 208 bytes total —
with the joinABprime query (100 000-tuple A joined with a
10 000-tuple Bprime, producing 10 000 result tuples of 416 bytes)
as the workhorse, plus the §4.4 variant where a normally-distributed
attribute (mean 50 000, standard deviation 750) induces the UU / NU /
UN / NN skew design space.
"""

from repro.wisconsin.distributions import (
    SkewedAttributeStats,
    normal_attribute_values,
    skew_statistics,
)
from repro.wisconsin.generator import (
    WISCONSIN_STRING_WIDTH,
    WisconsinGenerator,
    wisconsin_schema,
)
from repro.wisconsin.database import SKEW_KINDS, WisconsinDatabase
from repro.wisconsin.queries import (
    BENCHMARK_QUERIES,
    JoinQuery,
    join_abprime,
    join_asel_b,
    join_csel_asel_b,
)

__all__ = [
    "BENCHMARK_QUERIES",
    "JoinQuery",
    "SKEW_KINDS",
    "SkewedAttributeStats",
    "WISCONSIN_STRING_WIDTH",
    "WisconsinDatabase",
    "WisconsinGenerator",
    "join_abprime",
    "join_asel_b",
    "join_csel_asel_b",
    "normal_attribute_values",
    "skew_statistics",
    "wisconsin_schema",
]
