"""Ready-made benchmark databases.

:class:`WisconsinDatabase` packages the relation pairs the paper's
experiments use:

* :meth:`WisconsinDatabase.joinabprime` — the workhorse of §4.1–§4.3:
  a 100 000-tuple A and a 10 000-tuple Bprime, hash-declustered either
  on the join attribute (HPJA) or on another attribute (non-HPJA).
* :meth:`WisconsinDatabase.skewed` — the §4.4 design space: A plus a
  10 000-tuple random sample of A, each range-partitioned uniformly on
  its join attribute, joining any of the UU / NU / UN / NN attribute
  combinations.

Both constructors accept a ``scale`` so tests and benchmarks can run
the same code paths at a fraction of the paper's cardinalities.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.catalog import (
    HashPartitioning,
    RangeUniformPartitioning,
    Relation,
    load_relation,
)
from repro.core.joins.reference import reference_join
from repro.wisconsin.generator import WisconsinGenerator

Row = typing.Tuple

#: §4.4's XY design space: X = inner distribution, Y = outer
#: distribution; U(niform) selects unique1, N(ormal) the skewed
#: attribute.
SKEW_KINDS = ("UU", "NU", "UN", "NN")


def _attributes_for(kind: str) -> tuple[str, str]:
    """(inner_attribute, outer_attribute) for a UU/NU/UN/NN key."""
    if kind not in SKEW_KINDS:
        raise ValueError(
            f"skew kind must be one of {SKEW_KINDS}, got {kind!r}")
    inner = "normal" if kind[0] == "N" else "unique1"
    outer = "normal" if kind[1] == "N" else "unique1"
    return inner, outer


@dataclasses.dataclass
class WisconsinDatabase:
    """A loaded benchmark relation pair plus its ground truth."""

    outer: Relation
    inner: Relation
    inner_attribute: str
    outer_attribute: str
    generator: WisconsinGenerator

    @property
    def expected_result_rows(self) -> list[Row]:
        return reference_join(self.outer, self.inner,
                              self.outer_attribute, self.inner_attribute)

    @property
    def expected_result_tuples(self) -> int:
        return len(self.expected_result_rows)

    def with_representation(self, columnar: bool) -> "WisconsinDatabase":
        """This database with both relations in the requested fragment
        representation (see :meth:`Relation.with_representation`);
        ``self`` when nothing needs converting."""
        outer = self.outer.with_representation(columnar)
        inner = self.inner.with_representation(columnar)
        if outer is self.outer and inner is self.inner:
            return self
        return dataclasses.replace(self, outer=outer, inner=inner)

    # -- constructors --------------------------------------------------------

    @classmethod
    def joinabprime(cls, machine_or_sites, scale: float = 1.0,
                    seed: int = 0, hpja: bool = True,
                    materialize_strings: bool = False
                    ) -> "WisconsinDatabase":
        """The §4.1 joinABprime database.

        ``hpja=True`` hash-partitions both relations on the join
        attribute (unique1); ``hpja=False`` partitions on unique2, so
        the join is a non-HPJA join (Figure 6).
        """
        num_sites = _num_sites(machine_or_sites)
        n_outer, n_inner = _scaled_cardinalities(scale)
        generator = WisconsinGenerator(
            seed=seed, materialize_strings=materialize_strings)
        schema = generator.schema
        outer_rows = generator.relation_rows(n_outer)
        inner_rows = generator.relation_rows(n_inner, domain=n_inner)
        key = "unique1" if hpja else "unique2"
        outer = load_relation("A", schema, outer_rows,
                              HashPartitioning(key), num_sites)
        inner = load_relation("Bprime", schema, inner_rows,
                              HashPartitioning(key), num_sites)
        return cls(outer=outer, inner=inner,
                   inner_attribute="unique1", outer_attribute="unique1",
                   generator=generator)

    @classmethod
    def skewed(cls, machine_or_sites, kind: str, scale: float = 1.0,
               seed: int = 0, materialize_strings: bool = False
               ) -> "WisconsinDatabase":
        """The §4.4 database for one UU/NU/UN/NN combination.

        The inner relation is a 10 % random sample of the outer; each
        relation is range-partitioned *uniformly on its own join
        attribute* so every disk holds the same tuple count despite
        the skew (the paper's §4.4 setup).
        """
        num_sites = _num_sites(machine_or_sites)
        n_outer, n_inner = _scaled_cardinalities(scale)
        inner_attribute, outer_attribute = _attributes_for(kind)
        generator = WisconsinGenerator(
            seed=seed, materialize_strings=materialize_strings)
        schema = generator.schema
        outer_rows = generator.relation_rows(n_outer)
        inner_rows = generator.sample_rows(outer_rows, n_inner)
        outer = load_relation(
            "A", schema, outer_rows,
            RangeUniformPartitioning(outer_attribute), num_sites)
        inner = load_relation(
            "Aprime", schema, inner_rows,
            RangeUniformPartitioning(inner_attribute), num_sites)
        return cls(outer=outer, inner=inner,
                   inner_attribute=inner_attribute,
                   outer_attribute=outer_attribute,
                   generator=generator)


def _num_sites(machine_or_sites) -> int:
    if isinstance(machine_or_sites, int):
        if machine_or_sites < 1:
            raise ValueError(
                f"need >= 1 disk site, got {machine_or_sites}")
        return machine_or_sites
    return machine_or_sites.num_disk_nodes


def _scaled_cardinalities(scale: float) -> tuple[int, int]:
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    n_outer = max(10, round(100_000 * scale))
    n_inner = max(1, round(10_000 * scale))
    return n_outer, n_inner
