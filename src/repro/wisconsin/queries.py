"""The Wisconsin benchmark join queries (§4 of the paper).

``joinABprime`` is the query every figure and table of the paper
reports; ``joinAselB`` and ``joinCselAselB`` were also run ("the
trends were the same so those results are not presented") and are
provided here for completeness — their selections execute at the scan
sites, below the join, exactly as Gamma's optimizer places them.

A :class:`JoinQuery` is a declarative bundle (attributes + predicates
+ expected cardinality arithmetic) that plugs into
:func:`repro.core.joins.run_join` through :meth:`JoinQuery.spec_kwargs`.
"""

from __future__ import annotations

import dataclasses
import typing

Row = typing.Tuple


@dataclasses.dataclass(frozen=True)
class JoinQuery:
    """A benchmark join query over an (outer, inner) relation pair."""

    name: str
    inner_attribute: str
    outer_attribute: str
    inner_predicate: typing.Callable[[Row], bool] | None = None
    outer_predicate: typing.Callable[[Row], bool] | None = None
    description: str = ""

    def spec_kwargs(self) -> dict:
        """Keyword arguments for :func:`repro.core.joins.run_join`."""
        kwargs: dict = {
            "inner_attribute": self.inner_attribute,
            "outer_attribute": self.outer_attribute,
        }
        if self.inner_predicate is not None:
            kwargs["inner_predicate"] = self.inner_predicate
        if self.outer_predicate is not None:
            kwargs["outer_predicate"] = self.outer_predicate
        return kwargs


def join_abprime() -> JoinQuery:
    """joinABprime: A (100 000 tuples) ⋈ Bprime (10 000 tuples) on
    unique1 → 10 000 result tuples of 416 bytes (§4)."""
    return JoinQuery(
        name="joinABprime",
        inner_attribute="unique1",
        outer_attribute="unique1",
        description="100k x 10k equi-join on unique1, 10k results")


def join_asel_b(outer_cardinality: int = 100_000) -> JoinQuery:
    """joinAselB: a 10 % selection on A joined with Bprime.

    The selection (``unique1 < |A|/10``) runs at the disk sites during
    the scan of A; 10 000 of A's tuples survive at full scale and
    1 000 of them find a Bprime partner.
    """
    threshold = outer_cardinality // 10

    def predicate(row: Row, _threshold: int = threshold) -> bool:
        return row[0] < _threshold  # unique1 is attribute 0

    return JoinQuery(
        name="joinAselB",
        inner_attribute="unique1",
        outer_attribute="unique1",
        outer_predicate=predicate,
        description="10% selection of A joined with Bprime")


def join_csel_asel_b(outer_cardinality: int = 100_000,
                     inner_cardinality: int = 10_000) -> JoinQuery:
    """joinCselAselB (two-relation stage): 10 % selections on both
    inputs before the join.

    The full benchmark query is a three-relation plan; the stage
    implemented here is its expensive first join with both selections
    pushed to the scans.  Chain the produced result relation into a
    second :func:`run_join` to complete the plan (see
    ``examples/benchmark_queries.py``).
    """
    outer_threshold = outer_cardinality // 10
    inner_threshold = inner_cardinality // 10

    def outer_predicate(row: Row,
                        _threshold: int = outer_threshold) -> bool:
        return row[0] < _threshold

    def inner_predicate(row: Row,
                        _threshold: int = inner_threshold) -> bool:
        return row[0] < _threshold

    return JoinQuery(
        name="joinCselAselB",
        inner_attribute="unique1",
        outer_attribute="unique1",
        outer_predicate=outer_predicate,
        inner_predicate=inner_predicate,
        description="10% selections on both inputs before joining")


BENCHMARK_QUERIES: dict[str, typing.Callable[..., JoinQuery]] = {
    "joinABprime": join_abprime,
    "joinAselB": join_asel_b,
    "joinCselAselB": join_csel_asel_b,
}
