"""Join-attribute value distributions for the §4.4 skew experiments.

The paper's non-uniform distribution is a normal with mean 50 000 and
standard deviation 750 over the integer domain 0–99 999 — "a highly
skewed distribution": about 12 500 of 100 000 tuples fall in the 244
values from 50 000 to 50 243, yet no single value occurs in more than
77 tuples, and the hash chains it induces average 3.3 tuples with a
maximum of 16.  :func:`skew_statistics` computes those diagnostics so
tests can check the generated data reproduces the paper's numbers.
"""

from __future__ import annotations

import collections
import dataclasses
import typing

import numpy as np


def normal_attribute_array(n: int, rng: np.random.Generator,
                           mean: float = 50_000.0,
                           stddev: float = 750.0,
                           domain: int = 100_000) -> np.ndarray:
    """``n`` integer draws from the paper's normal, clipped to the
    domain ``[0, domain)``, as an int64 column."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if domain < 1:
        raise ValueError(f"domain must be >= 1, got {domain}")
    draws = rng.normal(loc=mean, scale=stddev, size=n)
    return np.clip(np.rint(draws), 0, domain - 1).astype(np.int64)


def normal_attribute_values(n: int, rng: np.random.Generator,
                            mean: float = 50_000.0,
                            stddev: float = 750.0,
                            domain: int = 100_000) -> list[int]:
    """:func:`normal_attribute_array` as a list of Python ints."""
    return normal_attribute_array(n, rng, mean=mean, stddev=stddev,
                                  domain=domain).tolist()


@dataclasses.dataclass(frozen=True)
class SkewedAttributeStats:
    """Diagnostics of one attribute column (paper §4.4 checks)."""

    n: int
    distinct: int
    max_value: int
    min_value: int
    max_duplicates: int
    #: Tuples whose value falls in [50 000, 50 243] — the paper
    #: reports ~12 500 for the 100 000-tuple relation.
    in_hot_range: int
    #: Occupancy-weighted mean chain length: sum(c^2)/sum(c), the
    #: average chain a probing tuple encounters (paper: 3.3).
    weighted_mean_duplicates: float

    @property
    def mean_duplicates(self) -> float:
        return self.n / self.distinct if self.distinct else 0.0


def skew_statistics(values: typing.Iterable[int],
                    hot_low: int = 50_000,
                    hot_high: int = 50_243) -> SkewedAttributeStats:
    """Compute the paper's §4.4 diagnostics for a value column."""
    counts = collections.Counter(values)
    n = sum(counts.values())
    if not counts:
        return SkewedAttributeStats(0, 0, 0, 0, 0, 0, 0.0)
    square_sum = sum(c * c for c in counts.values())
    return SkewedAttributeStats(
        n=n,
        distinct=len(counts),
        max_value=max(counts),
        min_value=min(counts),
        max_duplicates=max(counts.values()),
        in_hot_range=sum(c for v, c in counts.items()
                         if hot_low <= v <= hot_high),
        weighted_mean_duplicates=square_sum / n,
    )
