"""Wisconsin benchmark relation generator.

The standard schema (§4 of the paper: "thirteen 4-byte integer values
and three 52-byte string attributes"):

==============  =====================================================
attribute       contents (for a relation of n tuples)
==============  =====================================================
unique1         0..n-1, random order (candidate key, join attribute)
unique2         0..n-1, sequential (primary key)
two             unique1 mod 2
four            unique1 mod 4
ten             unique1 mod 10
twenty          unique1 mod 20
onePercent      unique1 mod 100
tenPercent      unique1 mod 10 (percent-selectivity helper)
twentyPercent   unique1 mod 5
fiftyPercent    unique1 mod 2
unique3         unique1 (copy)
evenOnePercent  onePercent * 2
normal          integer draw from normal(50 000, 750) clipped to the
                domain — the §4.4 skewed join attribute (it replaces
                the original benchmark's oddOnePercent so the skew
                experiments need no schema change; width unchanged)
stringu1        52-char string derived from unique1
stringu2        52-char string derived from unique2
string4         52 chars cycling through four fixed patterns
==============  =====================================================

String attributes are, by default, *not* materialised: rows carry an
empty string and all size accounting uses the declared 52-byte widths
(see :mod:`repro.catalog.schema`).  Pass ``materialize_strings=True``
for full-fidelity payloads; nothing in the simulation's arithmetic
changes, only Python memory use.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.catalog.pages import ColumnPage, ConstColumn, columnar_enabled
from repro.catalog.schema import Attribute, Schema
from repro.wisconsin.distributions import (normal_attribute_array,
                                           normal_attribute_values)

Row = typing.Tuple

WISCONSIN_STRING_WIDTH = 52

_INT_ATTRIBUTES = (
    "unique1", "unique2", "two", "four", "ten", "twenty", "onePercent",
    "tenPercent", "twentyPercent", "fiftyPercent", "unique3",
    "evenOnePercent", "normal",
)
_STRING_ATTRIBUTES = ("stringu1", "stringu2", "string4")

_STRING4_PATTERNS = ("AAAA", "HHHH", "OOOO", "VVVV")


def wisconsin_schema(name: str = "wisconsin") -> Schema:
    """The 208-byte, 16-attribute Wisconsin schema."""
    attributes = [Attribute.integer(a) for a in _INT_ATTRIBUTES]
    attributes.extend(Attribute.string(a, WISCONSIN_STRING_WIDTH)
                      for a in _STRING_ATTRIBUTES)
    return Schema(attributes, name=name)


def _unique_string(value: int) -> str:
    """The benchmark's 52-char string: seven significant letters
    (base-26 of the value) padded with x."""
    letters = []
    v = value
    for _ in range(7):
        letters.append(chr(ord("A") + v % 26))
        v //= 26
    return "".join(reversed(letters)).ljust(WISCONSIN_STRING_WIDTH, "x")


class WisconsinGenerator:
    """Deterministic generator for benchmark relations.

    Examples
    --------
    >>> gen = WisconsinGenerator(seed=42)
    >>> rows = gen.relation_rows(1000)
    >>> len(rows), len(set(r[0] for r in rows))
    (1000, 1000)
    """

    def __init__(self, seed: int = 0,
                 materialize_strings: bool = False) -> None:
        self.seed = seed
        self.materialize_strings = materialize_strings
        self._rng = np.random.default_rng(seed)
        self.schema = wisconsin_schema()

    def relation_rows(self, n: int, domain: int | None = None,
                      normal_mean: float | None = None,
                      normal_stddev: float = 750.0
                      ) -> typing.Sequence[Row]:
        """Generate ``n`` benchmark tuples.

        Returns a :class:`~repro.catalog.pages.ColumnPage` when the
        columnar representation is on (``REPRO_COLUMNAR``, default)
        and strings are not materialized, else a list of tuples; both
        hold bit-identical values and support the same row access.

        Parameters
        ----------
        n:
            Cardinality; unique1/unique2 range over ``0..n-1``.
        domain:
            Domain of the ``normal`` attribute (defaults to ``n``).
        normal_mean, normal_stddev:
            Parameters of the skewed attribute; the mean defaults to
            the middle of the domain, matching the paper's
            normal(50 000, 750) over 0..99 999 at full scale.
        """
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        domain = n if domain is None else domain
        mean = domain / 2 if normal_mean is None else normal_mean
        # The paper's stddev is 0.75% of the domain; scale it down
        # with the domain so reduced-scale runs keep the same shape.
        stddev = normal_stddev * (domain / 100_000 if domain < 100_000
                                  else 1.0)
        stddev = max(stddev, 1.0)
        unique1 = self._rng.permutation(n)
        if columnar_enabled() and not self.materialize_strings:
            # Column arrays straight from the generator — no tuple
            # list is ever built.  Every value is bit-identical to the
            # scalar loop below: the modulo arithmetic is over the
            # same non-negative int64 values, and the normal column
            # shares one rng.normal draw with the list variant.
            normal_column = normal_attribute_array(
                n, self._rng, mean=mean, stddev=stddev, domain=domain)
            u1 = unique1.astype(np.int64, copy=False)
            mod2 = u1 % 2
            mod10 = u1 % 10
            one_percent = u1 % 100
            return ColumnPage.from_columns((
                u1, np.arange(n, dtype=np.int64), mod2, u1 % 4, mod10,
                u1 % 20, one_percent, mod10, u1 % 5, mod2, u1,
                one_percent * 2, normal_column,
                ConstColumn(""), ConstColumn(""), ConstColumn(""),
            ), n=n)
        normal_values = normal_attribute_values(
            n, self._rng, mean=mean, stddev=stddev, domain=domain)
        rows: list[Row] = []
        for unique2 in range(n):
            u1 = int(unique1[unique2])
            one_percent = u1 % 100
            if self.materialize_strings:
                strings = (_unique_string(u1), _unique_string(unique2),
                           _STRING4_PATTERNS[unique2 % 4].ljust(
                               WISCONSIN_STRING_WIDTH, "x"))
            else:
                strings = ("", "", "")
            rows.append((
                u1, unique2, u1 % 2, u1 % 4, u1 % 10, u1 % 20,
                one_percent, u1 % 10, u1 % 5, u1 % 2, u1,
                one_percent * 2, normal_values[unique2],
            ) + strings)
        return rows

    def sample_rows(self, rows: typing.Sequence[Row], k: int
                    ) -> typing.Sequence[Row]:
        """``k`` rows sampled without replacement — how the paper built
        the 10 000-tuple relation of §4.4 ("randomly selecting 10,000
        tuples from the 100,000 tuple relation")."""
        if k > len(rows):
            raise ValueError(
                f"cannot sample {k} rows from {len(rows)}")
        indices = self._rng.choice(len(rows), size=k, replace=False)
        keep = sorted(int(i) for i in indices)
        if isinstance(rows, ColumnPage):
            return rows.take(keep)
        return [rows[i] for i in keep]
